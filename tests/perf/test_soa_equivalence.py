"""Differential harness: the SoA fast path is byte-identical to the reference.

The structure-of-arrays engine (``repro.pilot.soa`` + ``repro.md.batch``)
is pure optimization — ``soa=True`` and ``soa=False`` must produce the
*same simulation*, bit for bit: replica trajectories and energies at full
float precision, exchange decisions, manifests (timelines, metrics,
spans), virtual-clock counters, and checkpoints.  This suite is the gate:
every hot-path change must keep it green on both engines.

Coverage matrix: {synchronous, asynchronous} x {clean, unit faults,
staging faults, straggler + watchdog speculation, checkpoint/resume},
plus hypothesis-driven random ladders, and unit-level differential
properties for the two vectorized kernels (batched Brownian integration
vs per-unit ``run_md``; the write-side mdin/mdinfo parse caches vs the
regex reference).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RepEx
from repro.core.config import (
    DimensionSpec,
    FailureSpec,
    PatternSpec,
    ResourceSpec,
    SimulationConfig,
    WatchdogSpec,
)
from repro.md.amber import AmberAdapter
from repro.md.batch import MDWork, run_md_batch
from repro.md.forcefield import UmbrellaRestraint
from repro.md.sandbox import Sandbox
from repro.md.toymd import IntegratorParams, MDParams, ThermodynamicState
from repro.obs.metrics import MetricsRegistry


def make_config(soa: bool, **over) -> SimulationConfig:
    defaults = dict(
        title="diff-soa",
        dimensions=[DimensionSpec("temperature", 4, 273.0, 373.0)],
        resource=ResourceSpec("supermic", cores=4),
        n_cycles=2,
        steps_per_cycle=6000,
        numeric_steps=8,
        sample_stride=4,
        seed=7,
        soa=soa,
    )
    defaults.update(over)
    return SimulationConfig(**defaults)


def fingerprint(result) -> str:
    """Full-precision JSON of everything a run computed."""
    return json.dumps(
        {
            "t_end": result.t_end,
            "replicas": [
                {
                    "rid": rep.rid,
                    "coords": [float(c) for c in rep.coords],
                    "param_indices": rep.param_indices,
                    "status": rep.status.value,
                    "n_failures": rep.n_failures,
                    "history": [
                        {
                            "cycle": rec.cycle,
                            "param_indices": rec.param_indices,
                            "potential_energy": rec.potential_energy,
                            "partner": rec.partner,
                            "accepted": rec.accepted,
                            "failed": rec.failed,
                            "trajectory": (
                                rec.trajectory.tolist()
                                if rec.trajectory is not None
                                else None
                            ),
                        }
                        for rec in rep.history
                    ],
                }
                for rep in result.replicas
            ],
            "exchange": {
                name: [stats.attempted, stats.accepted]
                for name, stats in result.exchange_stats.items()
            },
            "accounting": [
                result.md_core_seconds,
                result.exchange_core_seconds,
                result.n_failures,
                result.n_relaunches,
            ],
        },
        sort_keys=True,
    )


def run_both(**over):
    """One reference run, one SoA run, instrumented; returns the pair."""
    results = []
    for soa in (False, True):
        repex = RepEx(make_config(soa, **over), registry=MetricsRegistry())
        result = repex.run()
        results.append((repex, result))
    return results


def assert_equivalent(pair) -> None:
    (ref_rx, ref), (soa_rx, soa) = pair
    assert fingerprint(soa) == fingerprint(ref)
    # the manifest carries timeline, metrics, spans, units, ladder —
    # JSONL equality covers the golden-trace surface in one shot
    # (config_hash excludes the soa knob by design)
    assert soa.manifest.to_jsonl() == ref.manifest.to_jsonl()
    assert soa_rx.session.clock.n_fired == ref_rx.session.clock.n_fired
    assert soa_rx.session.clock.peak_heap == ref_rx.session.clock.peak_heap


SCENARIOS = {
    "sync-clean": {},
    "sync-mode2": {"execution_mode": "II"},
    "sync-unit-faults": {
        "failure": FailureSpec(probability=0.4, policy="relaunch"),
        "n_cycles": 3,
    },
    "sync-staging-faults": {
        "failure": FailureSpec(
            policy="continue",
            staging_fault_probability=0.3,
            staging_max_retries=6,
        ),
    },
    "sync-straggler-watchdog": {
        "pattern": PatternSpec(kind="synchronous", barrier_deadline_s=300.0),
        "failure": FailureSpec(policy="continue", slow_nodes=[[0, 4.0]]),
        "watchdog": WatchdogSpec(
            enabled=True, deadline_factor=6.0, speculative=True
        ),
    },
    "async-clean": {
        "pattern": PatternSpec(kind="asynchronous", window_seconds=60.0),
        "n_cycles": 3,
    },
    "async-fifo": {
        "pattern": PatternSpec(kind="asynchronous", fifo_count=2),
        "resource": ResourceSpec("supermic", cores=2),
        "n_cycles": 3,
    },
    "async-unit-faults": {
        "pattern": PatternSpec(kind="asynchronous", window_seconds=60.0),
        "failure": FailureSpec(probability=0.3, policy="relaunch"),
        "n_cycles": 3,
    },
    "multidim-umbrella": {
        "dimensions": [
            DimensionSpec("temperature", 2, 290.0, 330.0),
            DimensionSpec(
                "umbrella", 3, 0.0, 360.0, angle="phi"
            ),
        ],
        "resource": ResourceSpec("supermic", cores=6),
        "n_cycles": 2,
    },
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_soa_matches_reference(name):
    assert_equivalent(run_both(**SCENARIOS[name]))


@settings(max_examples=8, deadline=None)
@given(
    n_windows=st.integers(min_value=2, max_value=5),
    n_cycles=st.integers(min_value=1, max_value=3),
    numeric_steps=st.integers(min_value=1, max_value=10),
    sample_stride=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mode=st.sampled_from(["I", "II"]),
    synchronous=st.booleans(),
)
def test_soa_matches_reference_on_random_ladders(
    n_windows, n_cycles, numeric_steps, sample_stride, seed, mode, synchronous
):
    over = dict(
        dimensions=[DimensionSpec("temperature", n_windows, 280.0, 380.0)],
        resource=ResourceSpec("supermic", cores=n_windows),
        n_cycles=n_cycles,
        numeric_steps=numeric_steps,
        sample_stride=sample_stride,
        seed=seed,
        execution_mode=mode,
    )
    if not synchronous:
        over["pattern"] = PatternSpec(kind="asynchronous", window_seconds=60.0)
    assert_equivalent(run_both(**over))


class TestCrashResume:
    """Checkpoint/resume crosses engines without a trace."""

    def test_soa_resume_matches_reference_baseline(self, tmp_path):
        baseline = RepEx(make_config(False, n_cycles=4)).run()
        first = RepEx(
            make_config(True, n_cycles=4),
            checkpoint_every=2,
            checkpoint_dir=tmp_path,
            stop_after_cycle=2,
        )
        assert first.run().interrupted
        resumed = RepEx(
            make_config(True, n_cycles=4),
            resume_from=tmp_path / "latest.json",
        ).run()
        assert fingerprint(resumed) == fingerprint(baseline)

    def test_resume_can_switch_engines_mid_run(self, tmp_path):
        """A checkpoint written under one engine resumes under the other —
        the soa knob is excluded from the config hash for exactly this."""
        baseline = RepEx(make_config(True, n_cycles=4)).run()
        RepEx(
            make_config(True, n_cycles=4),
            checkpoint_every=2,
            checkpoint_dir=tmp_path,
            stop_after_cycle=2,
        ).run()
        resumed = RepEx(
            make_config(False, n_cycles=4),
            resume_from=tmp_path / "latest.json",
        ).run()
        assert fingerprint(resumed) == fingerprint(baseline)

    def test_checkpoint_files_are_identical_across_engines(self, tmp_path):
        trees = {}
        for soa in (False, True):
            out = tmp_path / ("soa" if soa else "ref")
            RepEx(
                make_config(soa, n_cycles=4),
                checkpoint_every=2,
                checkpoint_dir=out,
            ).run()
            trees[soa] = {
                p.name: p.read_bytes() for p in sorted(out.glob("*.json"))
            }
        assert trees[True] == trees[False]


class TestGoldenTraces:
    """The committed golden fixtures hold on BOTH engines."""

    @pytest.mark.parametrize("soa", [False, True], ids=["reference", "soa"])
    def test_sync_golden_timeline(self, soa):
        from pathlib import Path

        from tests.conftest import small_tremd_config

        fixture = (
            Path(__file__).resolve().parent.parent
            / "fixtures"
            / "golden_sync_timeline.json"
        )
        result = RepEx(small_tremd_config(soa=soa)).run()
        got = json.dumps(result.manifest.timeline, separators=(",", ":"))
        assert got == fixture.read_text()

    @pytest.mark.parametrize("soa", [False, True], ids=["reference", "soa"])
    def test_async_golden_timeline(self, soa):
        from pathlib import Path

        from tests.conftest import small_tremd_config

        fixture = (
            Path(__file__).resolve().parent.parent
            / "fixtures"
            / "golden_async_timeline.json"
        )
        result = RepEx(
            small_tremd_config(
                pattern=PatternSpec(kind="asynchronous", window_seconds=60.0),
                n_cycles=3,
                soa=soa,
            )
        ).run()
        got = json.dumps(result.manifest.timeline, separators=(",", ":"))
        assert got == fixture.read_text()


# -- unit-level kernels -------------------------------------------------------


def _write_units(adapter, sandbox, specs):
    """Write one mdin/inpcrd(/RST) trio per spec; returns the tags."""
    tags = []
    for i, (temp, n_steps, stride, seed, restraints) in enumerate(specs):
        tag = f"u{i:03d}"
        state = ThermodynamicState(
            temperature=temp, restraints=tuple(restraints)
        )
        params = MDParams(
            n_steps=n_steps,
            sample_stride=stride,
            integrator_params=IntegratorParams(),
        )
        coords = np.array([-1.1 + 0.13 * i, -0.7 + 0.21 * i])
        adapter.write_input(sandbox, tag, coords, state, params, seed)
        tags.append(tag)
    return tags


unit_spec = st.tuples(
    st.floats(min_value=250.0, max_value=450.0),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.lists(
        st.builds(
            UmbrellaRestraint,
            angle=st.sampled_from(["phi", "psi"]),
            center_deg=st.floats(min_value=-180.0, max_value=180.0),
            k=st.floats(min_value=0.1, max_value=20.0),
        ),
        max_size=2,
    ),
)


@settings(max_examples=20, deadline=None)
@given(specs=st.lists(unit_spec, min_size=1, max_size=6))
def test_batched_md_is_bit_identical_to_per_unit(specs):
    """run_md_batch == N sequential run_md calls: results AND output files."""
    ref_adapter, soa_adapter = AmberAdapter(), AmberAdapter()
    ref_box, soa_box = Sandbox(), Sandbox()
    tags = _write_units(ref_adapter, ref_box, specs)
    _write_units(soa_adapter, soa_box, specs)

    ref_results = [ref_adapter.run_md(ref_box, tag) for tag in tags]
    soa_results = run_md_batch(
        [MDWork(adapter=soa_adapter, sandbox=soa_box, tag=tag) for tag in tags]
    )

    for ref, soa in zip(ref_results, soa_results):
        assert soa.final_coords.tolist() == ref.final_coords.tolist()
        assert soa.trajectory.tolist() == ref.trajectory.tolist()
        assert soa.potential_energy == ref.potential_energy
        assert soa.torsional_energy == ref.torsional_energy
        assert soa.restraint_energy == ref.restraint_energy
        assert soa.bath_energy == ref.bath_energy
    for tag in tags:
        for suffix in ("mdinfo", "rst", "mdcrd"):
            name = f"{tag}.{suffix}"
            try:
                ref_text = ref_box.read_text(name)
            except Exception:
                continue
            assert soa_box.read_text(name) == ref_text


@settings(max_examples=25, deadline=None)
@given(
    temp=st.floats(min_value=200.0, max_value=500.0),
    salt=st.floats(min_value=0.0, max_value=2.0),
    n_steps=st.integers(min_value=1, max_value=50_000),
    stride=st.integers(min_value=0, max_value=9),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    restraints=st.lists(
        st.builds(
            UmbrellaRestraint,
            angle=st.sampled_from(["phi", "psi"]),
            center_deg=st.floats(min_value=-360.0, max_value=360.0),
            k=st.floats(min_value=0.0001, max_value=500.0),
        ),
        max_size=3,
    ),
)
def test_mdin_write_cache_matches_regex_parse(
    temp, salt, n_steps, stride, seed, restraints
):
    """The write-side parse cache returns exactly what the regex reference
    extracts from the same bytes."""
    adapter = AmberAdapter()
    sandbox = Sandbox()
    state = ThermodynamicState(
        temperature=temp, salt_molar=salt, restraints=tuple(restraints)
    )
    params = MDParams(
        n_steps=n_steps,
        sample_stride=stride,
        integrator_params=IntegratorParams(),
    )
    adapter.write_input(
        sandbox, "t", np.array([0.3, -0.4]), state, params, seed
    )
    cached = adapter._parse_mdin(sandbox, "t")
    adapter.__dict__.pop("_mdin_cache", None)  # force the regex path
    reference = adapter._parse_mdin(sandbox, "t")
    c_params, c_state, c_seed = cached
    r_params, r_state, r_seed = reference
    assert c_seed == r_seed
    assert c_state == r_state
    assert (c_params.n_steps, c_params.sample_stride) == (
        r_params.n_steps,
        r_params.sample_stride,
    )
    assert c_params.integrator_params == r_params.integrator_params


def test_mdin_cache_rejects_foreign_bytes():
    """Editing the file after write_input must void the cache, not serve
    stale values."""
    adapter = AmberAdapter()
    sandbox = Sandbox()
    params = MDParams(n_steps=10, sample_stride=0)
    adapter.write_input(
        sandbox,
        "t",
        np.array([0.1, 0.2]),
        ThermodynamicState(temperature=300.0),
        params,
        seed=1,
    )
    text = sandbox.read_text("t.mdin")
    edited = text.replace("temp0 = 300.000000", "temp0 = 355.000000")
    assert edited != text
    sandbox.write_text("t.mdin", edited)
    _params, state, _seed = adapter._parse_mdin(sandbox, "t")
    assert state.temperature == 355.0

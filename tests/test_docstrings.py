"""Quality gate: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this
meta-test enforces it so it cannot silently regress.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        yield importlib.import_module(info.name)


def public_members(module):
    for name in dir(module):
        if name.startswith("_"):
            continue
        obj = getattr(module, name)
        if inspect.ismodule(obj):
            continue
        mod = getattr(obj, "__module__", None)
        if mod is None or not str(mod).startswith("repro"):
            continue  # re-exports of third-party objects
        if mod != module.__name__:
            continue  # defined elsewhere; checked there
        yield name, obj


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=lambda m: m.__name__
)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=lambda m: m.__name__
)
def test_public_classes_and_functions_documented(module):
    missing = []
    for name, obj in public_members(module):
        if inspect.isclass(obj):
            if not obj.__doc__:
                missing.append(f"{module.__name__}.{name}")
            for meth_name, meth in inspect.getmembers(
                obj, inspect.isfunction
            ):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                if not meth.__doc__:
                    missing.append(
                        f"{module.__name__}.{name}.{meth_name}"
                    )
        elif inspect.isfunction(obj):
            if not obj.__doc__:
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"

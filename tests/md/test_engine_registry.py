"""Tests for the engine adapter registry."""

import pytest

from repro.md.engine import (
    EngineAdapter,
    available_engines,
    get_adapter,
    register_adapter,
)
from repro.md.system import alanine_dipeptide_large


class TestRegistry:
    def test_both_engines_registered(self):
        assert set(available_engines()) >= {"amber", "namd"}

    def test_get_adapter_builds_instance(self):
        a = get_adapter("amber")
        assert a.name == "amber"
        assert a.system.n_atoms == 2881

    def test_get_adapter_with_system(self):
        a = get_adapter("amber", system=alanine_dipeptide_large())
        assert a.system.n_atoms == 64366

    def test_unknown_engine(self):
        with pytest.raises(KeyError, match="unknown MD engine"):
            get_adapter("gromacs")

    def test_register_rejects_non_adapter(self):
        with pytest.raises(TypeError):
            register_adapter(dict)

    def test_extension_path(self):
        """Adding a new engine = subclass + register (the paper's claim that
        integrating new engines is 'significantly simplified')."""

        @register_adapter
        class FakeEngine(EngineAdapter):
            name = "fake-engine"
            executables = ("fake.x",)

            def write_input(self, *a, **k):
                return []

            def run_md(self, *a, **k):
                raise NotImplementedError

            def read_info(self, *a, **k):
                return {}

            def read_restart(self, *a, **k):
                raise NotImplementedError

        try:
            assert "fake-engine" in available_engines()
            inst = get_adapter("fake-engine")
            assert inst.default_executable(1) == "fake.x"
        finally:
            from repro.md import engine as engine_mod

            del engine_mod._ADAPTERS["fake-engine"]

"""Tests for the calibrated performance model."""

import pytest

from repro.md.perfmodel import (
    PerfModelError,
    PerformanceModel,
    deterministic_model,
)
from repro.md.system import alanine_dipeptide, alanine_dipeptide_large


@pytest.fixture
def perf():
    return deterministic_model()


@pytest.fixture
def ala2():
    return alanine_dipeptide()


class TestMDDuration:
    def test_sander_calibration_anchor(self, perf, ala2):
        """6000 sander steps of ala2 must reproduce the paper's 139.6 s
        (plus the fixed startup)."""
        t = perf.md_duration("sander", ala2, 6000, cores=1)
        assert t == pytest.approx(139.6 + 1.5, abs=0.5)

    def test_scales_linearly_with_steps(self, perf, ala2):
        t1 = perf.md_duration("sander", ala2, 1000)
        t2 = perf.md_duration("sander", ala2, 2000)
        # startup is fixed; the per-step parts scale 2x
        assert (t2 - 1.5) == pytest.approx(2 * (t1 - 1.5), rel=1e-6)

    def test_sander_serial_only(self, perf, ala2):
        with pytest.raises(PerfModelError, match="serial"):
            perf.md_duration("sander", ala2, 100, cores=4)

    def test_pmemd_needs_multiple_cores(self, perf, ala2):
        with pytest.raises(PerfModelError, match="single CPU core"):
            perf.md_duration("pmemd.MPI", ala2, 100, cores=1)

    def test_pmemd_speedup_with_cores(self, perf):
        big = alanine_dipeptide_large()
        t16 = perf.md_duration("pmemd.MPI", big, 20000, cores=16)
        t64 = perf.md_duration("pmemd.MPI", big, 20000, cores=64)
        assert t64 < t16

    def test_pmemd_sublinear_speedup(self, perf):
        """Fig. 12: doubling cores does not halve time (comm overhead)."""
        big = alanine_dipeptide_large()
        t16 = perf.md_duration("pmemd.MPI", big, 20000, cores=16)
        t32 = perf.md_duration("pmemd.MPI", big, 20000, cores=32)
        assert t32 > t16 / 2

    def test_multicore_beats_serial_sander(self, perf):
        """The paper's 'substantial drop in MD times' with pmemd.MPI."""
        big = alanine_dipeptide_large()
        t_serial = perf.md_duration("sander", big, 20000, cores=1)
        t_16 = perf.md_duration("pmemd.MPI", big, 20000, cores=16)
        assert t_16 < t_serial / 5

    def test_namd_calibration_anchor(self, perf, ala2):
        """4000 NAMD steps of ala2 ~ 230 s + startup (Fig. 8 bars)."""
        t = perf.md_duration("namd2", ala2, 4000, cores=1)
        assert t == pytest.approx(230.0 + 12.0, abs=1.0)

    def test_unknown_executable(self, perf, ala2):
        with pytest.raises(PerfModelError, match="unknown executable"):
            perf.md_duration("gromacs", ala2, 100)

    def test_validation(self, perf, ala2):
        with pytest.raises(PerfModelError):
            perf.md_duration("sander", ala2, -1)
        with pytest.raises(PerfModelError):
            perf.md_duration("sander", ala2, 100, cores=0)


class TestExchangeDurations:
    def test_exchange_grows_linearly(self, perf):
        t64 = perf.exchange_calc_duration(64)
        t1728 = perf.exchange_calc_duration(1728)
        assert t1728 > t64
        # near-linear growth (Fig. 6)
        assert t1728 / t64 == pytest.approx(
            (0.6 + 0.012 * 1728) / (0.6 + 0.012 * 64), rel=1e-6
        )

    def test_multidim_costs_more(self, perf):
        assert perf.exchange_calc_duration(
            100, multidim=True
        ) > perf.exchange_calc_duration(100, multidim=False)

    def test_single_point_cores_split_states(self, perf, ala2):
        t1 = perf.single_point_duration(ala2, 3, cores=1)
        t3 = perf.single_point_duration(ala2, 3, cores=3)
        assert t3 < t1

    def test_single_point_validation(self, perf, ala2):
        with pytest.raises(PerfModelError):
            perf.single_point_duration(ala2, 0, cores=1)
        with pytest.raises(PerfModelError):
            perf.single_point_duration(ala2, 1, cores=0)

    def test_negative_group_rejected(self, perf):
        with pytest.raises(PerfModelError):
            perf.exchange_calc_duration(-1)


class TestPrepOverhead:
    def test_grows_with_replicas(self, perf):
        assert perf.task_prep_overhead(1728) > perf.task_prep_overhead(64)

    def test_3d_costs_more_than_1d(self, perf):
        """Fig. 5: RepEx overhead (3D) > RepEx overhead (1D)."""
        assert perf.task_prep_overhead(512, 3) > perf.task_prep_overhead(512, 1)

    def test_validation(self, perf):
        with pytest.raises(PerfModelError):
            perf.task_prep_overhead(-1)
        with pytest.raises(PerfModelError):
            perf.task_prep_overhead(10, 0)


class TestJitter:
    def test_deterministic_per_key(self):
        pm = PerformanceModel(jitter=0.05)
        ala2 = alanine_dipeptide()
        a = pm.md_duration("sander", ala2, 1000, task_key="k1")
        b = pm.md_duration("sander", ala2, 1000, task_key="k1")
        assert a == b

    def test_different_keys_differ(self):
        pm = PerformanceModel(jitter=0.05)
        ala2 = alanine_dipeptide()
        a = pm.md_duration("sander", ala2, 1000, task_key="k1")
        b = pm.md_duration("sander", ala2, 1000, task_key="k2")
        assert a != b

    def test_no_key_no_jitter(self):
        pm = PerformanceModel(jitter=0.05)
        ala2 = alanine_dipeptide()
        a = pm.md_duration("sander", ala2, 1000)
        b = deterministic_model().md_duration("sander", ala2, 1000)
        assert a == b

    def test_jitter_validated(self):
        with pytest.raises(ValueError):
            PerformanceModel(jitter=-0.1)


class TestFileSizes:
    def test_restart_scales_with_atoms(self, perf):
        small = alanine_dipeptide()
        big = alanine_dipeptide_large()
        assert perf.restart_size_mb(big) > perf.restart_size_mb(small)

    def test_groupfile_scales_with_states(self, perf):
        assert perf.groupfile_size_mb(10) > perf.groupfile_size_mb(1)

"""Tests for the sandbox (memory and disk backends)."""

import pytest

from repro.md.sandbox import Sandbox, SandboxError


@pytest.fixture(params=["memory", "disk"])
def sandbox(request, tmp_path):
    if request.param == "memory":
        return Sandbox()
    return Sandbox(root=tmp_path / "sb")


class TestBothBackends:
    def test_write_read_roundtrip(self, sandbox):
        sandbox.write_text("a.txt", "hello")
        assert sandbox.read_text("a.txt") == "hello"

    def test_overwrite(self, sandbox):
        sandbox.write_text("a.txt", "one")
        sandbox.write_text("a.txt", "two")
        assert sandbox.read_text("a.txt") == "two"

    def test_exists(self, sandbox):
        assert not sandbox.exists("x")
        sandbox.write_text("x", "")
        assert sandbox.exists("x")

    def test_missing_read_raises(self, sandbox):
        with pytest.raises(SandboxError, match="no such file"):
            sandbox.read_text("missing")

    def test_listdir_sorted(self, sandbox):
        sandbox.write_text("z", "")
        sandbox.write_text("a", "")
        assert sandbox.listdir() == ["a", "z"]

    def test_size_mb(self, sandbox):
        sandbox.write_text("f", "x" * 1000)
        assert sandbox.size_mb("f") == pytest.approx(0.001)

    def test_size_of_missing_raises(self, sandbox):
        with pytest.raises(SandboxError):
            sandbox.size_mb("missing")

    def test_remove(self, sandbox):
        sandbox.write_text("f", "data")
        sandbox.remove("f")
        assert not sandbox.exists("f")

    def test_remove_missing_raises(self, sandbox):
        with pytest.raises(SandboxError):
            sandbox.remove("missing")


class TestDiskSpecifics:
    def test_on_disk_flag(self, tmp_path):
        assert Sandbox(tmp_path).on_disk
        assert not Sandbox().on_disk

    def test_nested_paths(self, tmp_path):
        sb = Sandbox(tmp_path)
        sb.write_text("sub/dir/file.txt", "deep")
        assert sb.read_text("sub/dir/file.txt") == "deep"

    def test_escape_rejected(self, tmp_path):
        sb = Sandbox(tmp_path / "inner")
        with pytest.raises(SandboxError, match="escapes"):
            sb.write_text("../outside.txt", "bad")

"""Tests for minimization and equilibration."""

import numpy as np
import pytest

from repro.md.forcefield import ForceField, UmbrellaRestraint
from repro.md.minimize import equilibrate, minimize
from repro.md.toymd import ThermodynamicState, ToyMD


@pytest.fixture
def ff():
    return ForceField()


class TestMinimize:
    def test_converges_to_stationary_point(self, ff):
        res = minimize(
            ff, np.radians([-50.0, -30.0]), ThermodynamicState()
        )
        assert res.converged
        assert res.grad_norm < 1e-4

    def test_descends_from_start(self, ff):
        start = np.radians([-40.0, -80.0])
        e0 = float(ff.energy(start[0], start[1]))
        res = minimize(ff, start, ThermodynamicState())
        assert res.energy < e0

    def test_finds_alpha_r_from_nearby(self, ff):
        res = minimize(
            ff, np.radians([-70.0, -50.0]), ThermodynamicState()
        )
        phi, psi = np.degrees(res.coords)
        assert abs(phi - (-63.0)) < 15.0
        assert abs(psi - (-42.0)) < 15.0

    def test_restraint_shifts_minimum(self, ff):
        r = UmbrellaRestraint("phi", 0.0, 0.05)  # strong pull to phi=0
        res = minimize(
            ff,
            np.radians([-63.0, -42.0]),
            ThermodynamicState(restraints=(r,)),
        )
        phi = np.degrees(res.coords[0])
        assert abs(phi) < abs(-63.0)  # dragged toward the restraint

    def test_coords_stay_wrapped(self, ff):
        res = minimize(
            ff, np.radians([170.0, -170.0]), ThermodynamicState()
        )
        assert np.all(np.abs(res.coords) <= np.pi)

    def test_validation(self, ff):
        with pytest.raises(ValueError):
            minimize(ff, np.zeros(3), ThermodynamicState())
        with pytest.raises(ValueError):
            minimize(ff, np.zeros(2), ThermodynamicState(), max_iter=0)
        with pytest.raises(ValueError):
            minimize(ff, np.zeros(2), ThermodynamicState(), gtol=0.0)


class TestEquilibrate:
    def test_returns_valid_coords(self):
        engine = ToyMD()
        rng = np.random.default_rng(0)
        out = equilibrate(
            engine,
            np.radians([100.0, 100.0]),
            ThermodynamicState(300.0),
            n_steps=200,
            rng=rng,
        )
        assert out.shape == (2,)
        assert np.all(np.abs(out) <= np.pi)

    def test_deterministic_with_rng(self):
        engine = ToyMD()
        a = equilibrate(
            engine,
            np.zeros(2),
            ThermodynamicState(),
            n_steps=100,
            rng=np.random.default_rng(5),
        )
        b = equilibrate(
            engine,
            np.zeros(2),
            ThermodynamicState(),
            n_steps=100,
            rng=np.random.default_rng(5),
        )
        assert np.allclose(a, b)

    def test_minimize_only(self):
        engine = ToyMD()
        out = equilibrate(
            engine,
            np.radians([-70.0, -50.0]),
            ThermodynamicState(),
            n_steps=0,
        )
        phi, psi = np.degrees(out)
        assert abs(phi - (-63.0)) < 15.0


class TestConfigIntegration:
    def test_equilibration_moves_replicas_to_basins(self):
        from repro.core import RepEx
        from tests.conftest import small_tremd_config

        cfg_raw = small_tremd_config(equilibration_steps=0)
        cfg_eq = small_tremd_config(equilibration_steps=300)
        raw = RepEx(cfg_raw).amm.create_replicas()
        eq = RepEx(cfg_eq).amm.create_replicas()
        ff = ForceField()
        e_raw = np.mean(
            [float(ff.energy(r.coords[0], r.coords[1])) for r in raw]
        )
        e_eq = np.mean(
            [float(ff.energy(r.coords[0], r.coords[1])) for r in eq]
        )
        # equilibrated replicas sit lower on the surface on average
        assert e_eq <= e_raw + 0.5

    def test_config_validation(self):
        from repro.core.config import ConfigError
        from tests.conftest import small_tremd_config

        with pytest.raises(ConfigError):
            small_tremd_config(equilibration_steps=-1)

"""Tests for the NAMD-style adapter."""

import numpy as np
import pytest

from repro.md.engine import EngineError
from repro.md.forcefield import UmbrellaRestraint
from repro.md.namd import NAMDAdapter
from repro.md.sandbox import Sandbox
from repro.md.toymd import MDParams, ThermodynamicState


@pytest.fixture
def adapter():
    return NAMDAdapter()


@pytest.fixture
def sandbox():
    return Sandbox()


def write_basic(adapter, sandbox, tag="n0", **state_kwargs):
    state = ThermodynamicState(**state_kwargs)
    params = MDParams(n_steps=30, sample_stride=10)
    coords = np.radians([-120.0, 135.0])
    files = adapter.write_input(sandbox, tag, coords, state, params, seed=5)
    return files, state, params, coords


class TestInputFiles:
    def test_conf_contents(self, adapter, sandbox):
        write_basic(adapter, sandbox, temperature=310.0)
        conf = sandbox.read_text("n0.conf")
        assert "run                30" in conf
        assert "langevinTemp       310.0" in conf
        assert "seed               5" in conf

    def test_colvars_for_restraints(self, adapter, sandbox):
        restraints = (UmbrellaRestraint("psi", 135.0, 0.02),)
        files, *_ = write_basic(adapter, sandbox, restraints=restraints)
        assert "n0.colvars" in files
        colvars = sandbox.read_text("n0.colvars")
        assert "psi" in colvars
        assert "135.0" in colvars

    def test_salt_rejected(self, adapter, sandbox):
        with pytest.raises(EngineError, match="salt"):
            write_basic(adapter, sandbox, salt_molar=0.5)

    def test_bad_coords_rejected(self, adapter, sandbox):
        with pytest.raises(EngineError):
            adapter.write_input(
                sandbox, "x", np.zeros(1), ThermodynamicState(), MDParams(), 1
            )


class TestRoundTrip:
    def test_conf_parse(self, adapter, sandbox):
        restraints = (UmbrellaRestraint("phi", 45.0, 0.01),)
        write_basic(adapter, sandbox, temperature=340.0, restraints=restraints)
        params, state, seed = adapter._parse_conf(sandbox, "n0")
        assert params.n_steps == 30
        assert state.temperature == pytest.approx(340.0)
        assert seed == 5
        assert len(state.restraints) == 1
        assert state.restraints[0].angle == "phi"
        assert state.restraints[0].center_deg == pytest.approx(45.0)


class TestExecution:
    def test_run_writes_log_and_restart(self, adapter, sandbox):
        write_basic(adapter, sandbox)
        result = adapter.run_md(sandbox, "n0")
        assert sandbox.exists("n0.log")
        assert sandbox.exists("n0.restart.coor")
        log = sandbox.read_text("n0.log")
        assert "ENERGY:" in log
        assert "ETITLE:" in log
        info = adapter.read_info(sandbox, "n0")
        assert info["potential_energy"] == pytest.approx(
            result.potential_energy, abs=0.01
        )
        assert info["torsional_energy"] == pytest.approx(
            result.torsional_energy, abs=0.02
        )

    def test_read_restart(self, adapter, sandbox):
        write_basic(adapter, sandbox)
        result = adapter.run_md(sandbox, "n0")
        coords = adapter.read_restart(sandbox, "n0")
        assert np.allclose(coords, result.final_coords, atol=1e-6)

    def test_trajectory_roundtrip(self, adapter, sandbox):
        write_basic(adapter, sandbox)
        result = adapter.run_md(sandbox, "n0")
        traj = adapter.read_trajectory(sandbox, "n0")
        assert traj.shape == result.trajectory.shape
        assert np.allclose(traj, result.trajectory, atol=1e-6)

    def test_empty_trajectory_safe(self, adapter, sandbox):
        sandbox.write_text("e.dcd.txt", "# header only\n")
        traj = adapter.read_trajectory(sandbox, "e")
        assert traj.shape == (0, 2)

    def test_missing_energy_lines_raise(self, adapter, sandbox):
        sandbox.write_text("empty.log", "Info: no energies here\n")
        with pytest.raises(EngineError, match="ENERGY"):
            adapter.read_info(sandbox, "empty")

    def test_info_file_is_log(self, adapter):
        assert adapter.info_file("x") == "x.log"


class TestCrossEngineConsistency:
    def test_same_physics_as_amber(self, sandbox):
        """Both adapters drive the same backend: identical seeds and state
        must give identical dynamics."""
        from repro.md.amber import AmberAdapter

        amber, namd = AmberAdapter(), NAMDAdapter()
        coords = np.radians([-63.0, -42.0])
        state = ThermodynamicState(temperature=300.0)
        params = MDParams(n_steps=25, sample_stride=5)
        sb_a, sb_n = Sandbox(), Sandbox()
        amber.write_input(sb_a, "a", coords, state, params, seed=123)
        namd.write_input(sb_n, "n", coords, state, params, seed=123)
        res_a = amber.run_md(sb_a, "a")
        res_n = namd.run_md(sb_n, "n")
        assert np.allclose(res_a.final_coords, res_n.final_coords, atol=1e-9)

"""Tests for molecular system presets."""

import pytest

from repro.md.system import (
    MolecularSystem,
    alanine_dipeptide,
    alanine_dipeptide_large,
    get_system,
    vacuum_dipeptide,
)


class TestPresets:
    def test_paper_atom_counts(self):
        assert alanine_dipeptide().n_atoms == 2881
        assert alanine_dipeptide_large().n_atoms == 64366

    def test_solvent_atoms(self):
        s = alanine_dipeptide()
        assert s.n_solvent_atoms == 2881 - 22

    def test_vacuum_has_no_bath(self):
        assert vacuum_dipeptide().bath_dof == 0

    def test_bath_scales_with_size(self):
        assert (
            alanine_dipeptide_large().bath_dof > alanine_dipeptide().bath_dof
        )

    def test_get_system(self):
        assert get_system("ala2").n_atoms == 2881
        assert get_system("ala2-large").n_atoms == 64366

    def test_get_system_unknown(self):
        with pytest.raises(KeyError, match="unknown system"):
            get_system("water-box")


class TestValidation:
    def test_rejects_nonpositive_atoms(self):
        with pytest.raises(ValueError):
            MolecularSystem(name="x", n_atoms=0)

    def test_rejects_solute_exceeding_total(self):
        with pytest.raises(ValueError):
            MolecularSystem(name="x", n_atoms=10, n_solute_atoms=11)

    def test_rejects_negative_bath(self):
        with pytest.raises(ValueError):
            MolecularSystem(name="x", n_atoms=10, bath_dof=-1)

"""Tests for the Langevin integrators."""

import numpy as np
import pytest

from repro.md.forcefield import ForceField, GaussianWell, UmbrellaRestraint
from repro.md.integrators import (
    BAOABIntegrator,
    BrownianIntegrator,
    IntegratorParams,
    get_integrator,
)
from repro.utils.units import KB_KCAL_PER_MOL_K


@pytest.fixture
def ff():
    return ForceField()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestIntegratorParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            IntegratorParams(dt=0.0)
        with pytest.raises(ValueError):
            IntegratorParams(friction=0.0)
        with pytest.raises(ValueError):
            IntegratorParams(mass=-1.0)


class TestBrownian:
    def test_shapes(self, ff, rng):
        integ = BrownianIntegrator(ff)
        x0 = np.zeros((5, 2))
        final, samples = integ.run(x0, 100, 300.0, rng, sample_stride=10)
        assert final.shape == (5, 2)
        assert samples.shape == (10, 5, 2)

    def test_no_sampling(self, ff, rng):
        integ = BrownianIntegrator(ff)
        final, samples = integ.run(np.zeros((1, 2)), 10, 300.0, rng)
        assert samples is None

    def test_input_not_mutated(self, ff, rng):
        integ = BrownianIntegrator(ff)
        x0 = np.ones((2, 2))
        integ.run(x0, 50, 300.0, rng)
        assert np.all(x0 == 1.0)

    def test_angles_stay_wrapped(self, ff, rng):
        integ = BrownianIntegrator(ff)
        final, samples = integ.run(
            np.zeros((3, 2)), 500, 600.0, rng, sample_stride=50
        )
        assert np.all(np.abs(final) <= np.pi)
        assert np.all(np.abs(samples) <= np.pi)

    def test_zero_steps_identity(self, ff, rng):
        integ = BrownianIntegrator(ff)
        x0 = np.array([[0.3, -0.4]])
        final, _ = integ.run(x0, 0, 300.0, rng)
        assert np.allclose(final, x0)

    def test_deterministic_given_seed(self, ff):
        integ = BrownianIntegrator(ff)
        a, _ = integ.run(
            np.zeros((1, 2)), 100, 300.0, np.random.default_rng(7)
        )
        b, _ = integ.run(
            np.zeros((1, 2)), 100, 300.0, np.random.default_rng(7)
        )
        assert np.allclose(a, b)

    def test_validation(self, ff, rng):
        integ = BrownianIntegrator(ff)
        with pytest.raises(ValueError):
            integ.run(np.zeros((1, 3)), 10, 300.0, rng)
        with pytest.raises(ValueError):
            integ.run(np.zeros((1, 2)), -1, 300.0, rng)
        with pytest.raises(ValueError):
            integ.run(np.zeros((1, 2)), 10, -5.0, rng)


class TestCanonicalSampling:
    """Both integrators must sample the Boltzmann distribution."""

    def _flat_well_ff(self):
        # single harmonic-ish well (one deep Gaussian) so we can predict
        # the stationary variance analytically near the bottom
        well = GaussianWell(center=(0.0, 0.0), depth=50.0, sigma=0.5)
        return ForceField(wells=(well,), offset=50.0, elec_amplitude=0.0)

    @pytest.mark.parametrize("kind", ["brownian", "baoab"])
    def test_harmonic_variance(self, kind, rng):
        ff = self._flat_well_ff()
        # near the bottom: V ~ (depth/(2 sigma^2)) r^2 = 100 (x^2 + y^2),
        # so per-DOF variance is kT / (2 k) with k = 100
        k_eff = 0.5 * 50.0 / 0.5**2
        t = 300.0
        expected_var = KB_KCAL_PER_MOL_K * t / (2 * k_eff)
        integ = get_integrator(
            kind, ff, IntegratorParams(dt=0.0005, friction=1.0)
        )
        _, samples = integ.run(
            np.zeros((64, 2)), 15000, t, rng, sample_stride=20
        )
        var = samples[200:].var()
        assert var == pytest.approx(expected_var, rel=0.15)

    def test_brownian_and_baoab_agree(self, rng):
        ff = self._flat_well_ff()
        t = 300.0
        _, sb = BrownianIntegrator(
            ff, IntegratorParams(dt=0.0005)
        ).run(np.zeros((64, 2)), 15000, t, np.random.default_rng(1),
              sample_stride=20)
        _, sa = BAOABIntegrator(
            ff, IntegratorParams(dt=0.0005)
        ).run(np.zeros((64, 2)), 15000, t, np.random.default_rng(2),
              sample_stride=20)
        assert sb[200:].var() == pytest.approx(sa[200:].var(), rel=0.15)

    def test_restraint_confines(self, ff, rng):
        integ = BrownianIntegrator(ff)
        restraint = (UmbrellaRestraint("phi", 90.0, 0.02),)
        final, samples = integ.run(
            np.radians([[90.0, 0.0]] * 8),
            2000,
            300.0,
            rng,
            restraints=restraint,
            sample_stride=20,
        )
        phis = np.degrees(samples[..., 0]).ravel()
        # k=0.02/deg^2 => sigma ~ sqrt(kT/(2k)) ~ 3.9 degrees
        assert np.abs(phis - 90.0).mean() < 12.0


class TestRegistry:
    def test_lookup(self, ff):
        assert isinstance(get_integrator("brownian", ff), BrownianIntegrator)
        assert isinstance(get_integrator("baoab", ff), BAOABIntegrator)

    def test_unknown(self, ff):
        with pytest.raises(KeyError, match="unknown integrator"):
            get_integrator("verlet9000", ff)

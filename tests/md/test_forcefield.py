"""Tests for the torsional force field and solvent bath."""

import math

import numpy as np
import pytest

from repro.md.forcefield import (
    DEFAULT_WELLS,
    ForceField,
    GaussianWell,
    SolventBath,
    UmbrellaRestraint,
    debye_screening_factor,
    wrap_angle,
)
from repro.utils.units import KB_KCAL_PER_MOL_K


class TestWrapAngle:
    def test_range(self):
        xs = np.linspace(-10, 10, 101)
        w = wrap_angle(xs)
        assert np.all(w >= -math.pi)
        assert np.all(w < math.pi)

    def test_identity_in_range(self):
        assert wrap_angle(1.0) == pytest.approx(1.0)

    def test_periodicity(self):
        assert wrap_angle(1.0 + 2 * math.pi) == pytest.approx(1.0)


class TestGaussianWell:
    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianWell(center=(0, 0), depth=-1.0, sigma=1.0)
        with pytest.raises(ValueError):
            GaussianWell(center=(0, 0), depth=1.0, sigma=0.0)


class TestRamaSurface:
    def setup_method(self):
        self.ff = ForceField()

    def test_alpha_r_is_global_minimum_region(self):
        """The deepest basin sits at the alpha-R well center."""
        e_alpha = self.ff.rama_energy(np.radians(-63), np.radians(-42))
        grid = np.radians(np.linspace(-180, 175, 72))
        phi, psi = np.meshgrid(grid, grid, indexing="ij")
        e_min = self.ff.rama_energy(phi, psi).min()
        assert e_alpha == pytest.approx(e_min, abs=0.3)

    def test_energy_range_matches_fig4_scale(self):
        """Surface spans roughly 0-16 kcal/mol like the paper's contours."""
        grid = np.radians(np.linspace(-180, 175, 72))
        phi, psi = np.meshgrid(grid, grid, indexing="ij")
        e = self.ff.rama_energy(phi, psi)
        assert e.max() <= 16.0 + 1e-9
        assert e.max() - e.min() > 6.0

    def test_periodic_energy(self):
        e1 = self.ff.rama_energy(0.3, -0.7)
        e2 = self.ff.rama_energy(0.3 + 2 * math.pi, -0.7 - 2 * math.pi)
        assert float(e1) == pytest.approx(float(e2))

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        h = 1e-6
        for _ in range(20):
            phi, psi = rng.uniform(-math.pi, math.pi, 2)
            gphi, gpsi = self.ff.rama_gradient(phi, psi)
            num_phi = (
                self.ff.rama_energy(phi + h, psi)
                - self.ff.rama_energy(phi - h, psi)
            ) / (2 * h)
            num_psi = (
                self.ff.rama_energy(phi, psi + h)
                - self.ff.rama_energy(phi, psi - h)
            ) / (2 * h)
            assert float(gphi) == pytest.approx(float(num_phi), abs=1e-4)
            assert float(gpsi) == pytest.approx(float(num_psi), abs=1e-4)

    def test_vectorized_matches_scalar(self):
        phis = np.array([0.1, -1.2, 2.2])
        psis = np.array([0.5, 0.0, -2.0])
        vec = self.ff.rama_energy(phis, psis)
        for k in range(3):
            assert vec[k] == pytest.approx(
                float(self.ff.rama_energy(phis[k], psis[k]))
            )


class TestElectrostatics:
    def test_screening_factor_limits(self):
        assert debye_screening_factor(0.0) == 1.0
        assert debye_screening_factor(5.0) < debye_screening_factor(0.1)

    def test_screening_rejects_negative(self):
        with pytest.raises(ValueError):
            debye_screening_factor(-0.1)

    def test_salt_weakens_elec_term(self):
        ff = ForceField()
        # pick a point where the elec term is attractive
        phi, psi = 0.4, -0.4
        e0 = float(ff.energy(phi, psi, salt_molar=0.0))
        e_hi = float(ff.energy(phi, psi, salt_molar=2.0))
        assert abs(e_hi - float(ff.rama_energy(phi, psi))) < abs(
            e0 - float(ff.rama_energy(phi, psi))
        )

    def test_full_gradient_matches_fd_with_salt_and_restraints(self):
        ff = ForceField()
        restraints = (
            UmbrellaRestraint("phi", 60.0, 0.01),
            UmbrellaRestraint("psi", -120.0, 0.005),
        )
        rng = np.random.default_rng(1)
        h = 1e-6
        for _ in range(10):
            phi, psi = rng.uniform(-3, 3, 2)
            gphi, gpsi = ff.gradient(
                phi, psi, salt_molar=0.5, restraints=restraints
            )

            def e(p, s):
                return float(
                    ff.energy(p, s, salt_molar=0.5, restraints=restraints)
                )

            assert float(gphi) == pytest.approx(
                (e(phi + h, psi) - e(phi - h, psi)) / (2 * h), abs=1e-3
            )
            assert float(gpsi) == pytest.approx(
                (e(phi, psi + h) - e(phi, psi - h)) / (2 * h), abs=1e-3
            )


class TestUmbrellaRestraint:
    def test_zero_at_center(self):
        r = UmbrellaRestraint("phi", 45.0, 0.02)
        assert float(r.energy(np.radians(45.0), 0.0)) == pytest.approx(0.0)

    def test_quadratic_growth(self):
        r = UmbrellaRestraint("phi", 0.0, 0.02)
        e10 = float(r.energy(np.radians(10.0), 0.0))
        e20 = float(r.energy(np.radians(20.0), 0.0))
        assert e10 == pytest.approx(0.02 * 100.0)
        assert e20 == pytest.approx(4 * e10)

    def test_periodic_distance(self):
        r = UmbrellaRestraint("phi", 350.0, 0.02)
        # 10 degrees away through the wrap
        e = float(r.energy(np.radians(0.0), 0.0))
        assert e == pytest.approx(0.02 * 100.0)

    def test_psi_restraint_ignores_phi(self):
        r = UmbrellaRestraint("psi", 0.0, 0.02)
        e1 = float(r.energy(np.radians(100.0), np.radians(30.0)))
        e2 = float(r.energy(np.radians(-100.0), np.radians(30.0)))
        assert e1 == pytest.approx(e2)

    def test_validation(self):
        with pytest.raises(ValueError):
            UmbrellaRestraint("chi", 0.0, 0.02)
        with pytest.raises(ValueError):
            UmbrellaRestraint("phi", 0.0, -0.1)


class TestSolventBath:
    def test_statistics_match_gamma(self):
        bath = SolventBath(4800)
        rng = np.random.default_rng(0)
        t = 300.0
        samples = np.array(
            [bath.sample_energy(t, rng) for _ in range(3000)]
        )
        assert samples.mean() == pytest.approx(
            bath.mean_energy(t), rel=0.01
        )
        assert samples.std() == pytest.approx(bath.std_energy(t), rel=0.05)

    def test_mean_scales_with_temperature(self):
        bath = SolventBath(1000)
        assert bath.mean_energy(373.0) > bath.mean_energy(273.0)

    def test_empty_bath_is_zero(self):
        bath = SolventBath(0)
        rng = np.random.default_rng(0)
        assert bath.sample_energy(300.0, rng) == 0.0

    def test_mean_energy_equipartition(self):
        bath = SolventBath(2000)
        # (n/2) kB T
        assert bath.mean_energy(300.0) == pytest.approx(
            1000 * KB_KCAL_PER_MOL_K * 300.0
        )

    def test_rejects_negative_dof(self):
        with pytest.raises(ValueError):
            SolventBath(-1)

"""Tests for the Amber-style adapter: file dialect round-trips + execution."""

import numpy as np
import pytest

from repro.md.amber import AmberAdapter
from repro.md.engine import EngineError
from repro.md.forcefield import UmbrellaRestraint
from repro.md.sandbox import Sandbox
from repro.md.toymd import MDParams, ThermodynamicState


@pytest.fixture
def adapter():
    return AmberAdapter()


@pytest.fixture
def sandbox():
    return Sandbox()


def write_basic(adapter, sandbox, tag="t0", **state_kwargs):
    state = ThermodynamicState(**state_kwargs)
    params = MDParams(n_steps=40, sample_stride=10)
    coords = np.radians([-63.0, -42.0])
    files = adapter.write_input(sandbox, tag, coords, state, params, seed=99)
    return files, state, params, coords


class TestInputFiles:
    def test_mdin_contents(self, adapter, sandbox):
        write_basic(adapter, sandbox, temperature=320.0, salt_molar=0.25)
        mdin = sandbox.read_text("t0.mdin")
        assert "nstlim = 40" in mdin
        assert "temp0 = 320.0" in mdin
        assert "saltcon = 0.25" in mdin
        assert "ig = 99" in mdin

    def test_no_disang_without_restraints(self, adapter, sandbox):
        files, *_ = write_basic(adapter, sandbox)
        assert "t0.RST" not in files
        assert "nmropt = 0" in sandbox.read_text("t0.mdin")

    def test_disang_written_with_restraints(self, adapter, sandbox):
        restraints = (UmbrellaRestraint("phi", 45.0, 0.02),)
        files, *_ = write_basic(adapter, sandbox, restraints=restraints)
        assert "t0.RST" in files
        rst = sandbox.read_text("t0.RST")
        assert "iat=5,7,9,15" in rst
        assert "r2=45.0" in rst
        mdin = sandbox.read_text("t0.mdin")
        assert "nmropt = 1" in mdin
        assert "DISANG=t0.RST" in mdin

    def test_psi_restraint_atoms(self, adapter, sandbox):
        restraints = (UmbrellaRestraint("psi", -120.0, 0.01),)
        write_basic(adapter, sandbox, restraints=restraints)
        assert "iat=7,9,15,17" in sandbox.read_text("t0.RST")

    def test_bad_coords_rejected(self, adapter, sandbox):
        with pytest.raises(EngineError):
            adapter.write_input(
                sandbox,
                "bad",
                np.zeros(3),
                ThermodynamicState(),
                MDParams(),
                1,
            )


class TestRoundTrip:
    def test_mdin_parse_matches_write(self, adapter, sandbox):
        restraints = (
            UmbrellaRestraint("phi", 45.0, 0.02),
            UmbrellaRestraint("psi", 90.0, 0.015),
        )
        write_basic(
            adapter,
            sandbox,
            temperature=350.0,
            salt_molar=0.4,
            restraints=restraints,
        )
        params, state, seed = adapter._parse_mdin(sandbox, "t0")
        assert params.n_steps == 40
        assert state.temperature == pytest.approx(350.0)
        assert state.salt_molar == pytest.approx(0.4)
        assert seed == 99
        assert len(state.restraints) == 2
        angles = {r.angle for r in state.restraints}
        assert angles == {"phi", "psi"}
        ks = sorted(r.k for r in state.restraints)
        assert ks == pytest.approx([0.015, 0.02])

    def test_coords_roundtrip(self, adapter, sandbox):
        coords = np.radians([123.456, -77.89])
        adapter._write_coords(sandbox, "c.inpcrd", coords)
        back = adapter._read_coords(sandbox, "c.inpcrd")
        assert np.allclose(back, coords, atol=1e-6)


class TestExecution:
    def test_run_md_produces_outputs(self, adapter, sandbox):
        write_basic(adapter, sandbox)
        result = adapter.run_md(sandbox, "t0")
        assert sandbox.exists("t0.mdinfo")
        assert sandbox.exists("t0.rst")
        assert sandbox.exists("t0.mdcrd")
        assert result.n_steps == 40

    def test_read_info_matches_result(self, adapter, sandbox):
        write_basic(adapter, sandbox)
        result = adapter.run_md(sandbox, "t0")
        info = adapter.read_info(sandbox, "t0")
        assert info["potential_energy"] == pytest.approx(
            result.potential_energy, abs=0.01
        )
        assert info["temperature"] == pytest.approx(300.0)

    def test_read_restart_matches_result(self, adapter, sandbox):
        write_basic(adapter, sandbox)
        result = adapter.run_md(sandbox, "t0")
        coords = adapter.read_restart(sandbox, "t0")
        assert np.allclose(coords, result.final_coords, atol=1e-6)

    def test_trajectory_roundtrip(self, adapter, sandbox):
        write_basic(adapter, sandbox)
        result = adapter.run_md(sandbox, "t0")
        traj = adapter.read_trajectory(sandbox, "t0")
        assert traj.shape == result.trajectory.shape
        assert np.allclose(traj, result.trajectory, atol=1e-6)

    def test_deterministic_given_seed(self, adapter):
        sb1, sb2 = Sandbox(), Sandbox()
        write_basic(adapter, sb1)
        write_basic(adapter, sb2)
        r1 = adapter.run_md(sb1, "t0")
        r2 = adapter.run_md(sb2, "t0")
        assert np.allclose(r1.final_coords, r2.final_coords)

    def test_run_md_on_disk(self, adapter, tmp_path):
        sb = Sandbox(tmp_path)
        write_basic(adapter, sb)
        result = adapter.run_md(sb, "t0")
        assert (tmp_path / "t0.mdinfo").is_file()
        info = adapter.read_info(sb, "t0")
        assert info["potential_energy"] == pytest.approx(
            result.potential_energy, abs=0.01
        )


class TestSinglePointGroup:
    def test_groupfile_and_energies(self, adapter, sandbox):
        coords = np.radians([-63.0, -42.0])
        states = [
            ThermodynamicState(salt_molar=c) for c in (0.0, 0.5, 1.0)
        ]
        files = adapter.write_groupfile(sandbox, "g0", coords, states)
        assert "g0.groupfile" in files
        group = sandbox.read_text("g0.groupfile")
        assert len(group.strip().splitlines()) == 3

        energies = adapter.run_single_point_group(sandbox, "g0")
        assert energies.shape == (3,)
        expected = [
            adapter.toymd.single_point_energy(coords, s) for s in states
        ]
        assert np.allclose(energies, expected)

    def test_energy_row_staged(self, adapter, sandbox):
        coords = np.radians([0.0, 0.0])
        states = [ThermodynamicState(salt_molar=c) for c in (0.0, 1.0)]
        adapter.write_groupfile(sandbox, "g1", coords, states)
        energies = adapter.run_single_point_group(sandbox, "g1")
        row = adapter.read_energy_row(sandbox, "g1")
        assert np.allclose(row, energies)

    def test_restrained_single_points(self, adapter, sandbox):
        coords = np.radians([10.0, 0.0])
        r = UmbrellaRestraint("phi", 0.0, 0.01)
        states = [
            ThermodynamicState(restraints=(r,)),
            ThermodynamicState(),
        ]
        adapter.write_groupfile(sandbox, "g2", coords, states)
        energies = adapter.run_single_point_group(sandbox, "g2")
        assert energies[0] - energies[1] == pytest.approx(
            0.01 * 100.0, abs=1e-6
        )


class TestDefaults:
    def test_executables(self, adapter):
        assert adapter.default_executable(1) == "sander"
        assert adapter.default_executable(16) == "pmemd.MPI"

"""Tests for the toy MD engine."""

import numpy as np
import pytest

from repro.md.forcefield import UmbrellaRestraint
from repro.md.system import vacuum_dipeptide
from repro.md.toymd import MDParams, MDResult, ThermodynamicState, ToyMD


@pytest.fixture
def engine():
    return ToyMD()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestThermodynamicState:
    def test_defaults(self):
        s = ThermodynamicState()
        assert s.temperature == 300.0
        assert s.salt_molar == 0.0
        assert s.restraints == ()

    def test_with_methods_return_copies(self):
        s = ThermodynamicState()
        s2 = s.with_temperature(350.0)
        assert s.temperature == 300.0
        assert s2.temperature == 350.0
        s3 = s.with_salt(0.5)
        assert s3.salt_molar == 0.5
        r = (UmbrellaRestraint("phi", 0.0),)
        s4 = s.with_restraints(r)
        assert s4.restraints == r

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermodynamicState(temperature=-1.0)
        with pytest.raises(ValueError):
            ThermodynamicState(salt_molar=-0.5)


class TestMDParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            MDParams(n_steps=-1)
        with pytest.raises(ValueError):
            MDParams(sample_stride=-1)


class TestRun:
    def test_result_fields(self, engine, rng):
        res = engine.run(
            np.radians([-63.0, -42.0]),
            ThermodynamicState(),
            MDParams(n_steps=200, sample_stride=20),
            rng,
        )
        assert isinstance(res, MDResult)
        assert res.final_coords.shape == (2,)
        assert res.trajectory.shape == (10, 2)
        assert res.n_steps == 200
        assert res.temperature == 300.0

    def test_energy_decomposition_consistent(self, engine, rng):
        state = ThermodynamicState(
            restraints=(UmbrellaRestraint("phi", -60.0, 0.01),)
        )
        res = engine.run(
            np.radians([-63.0, -42.0]), state, MDParams(n_steps=100), rng
        )
        assert res.potential_energy == pytest.approx(
            res.torsional_energy + res.restraint_energy + res.bath_energy
        )

    def test_bath_energy_positive_for_solvated(self, engine, rng):
        res = engine.run(
            np.radians([-63.0, -42.0]),
            ThermodynamicState(),
            MDParams(n_steps=10),
            rng,
        )
        assert res.bath_energy > 0

    def test_vacuum_bath_is_zero(self, rng):
        engine = ToyMD(system=vacuum_dipeptide())
        res = engine.run(
            np.zeros(2), ThermodynamicState(), MDParams(n_steps=10), rng
        )
        assert res.bath_energy == 0.0

    def test_bad_coords_rejected(self, engine, rng):
        with pytest.raises(ValueError):
            engine.run(
                np.zeros(3), ThermodynamicState(), MDParams(n_steps=1), rng
            )

    def test_as_dict_roundtrip(self, engine, rng):
        res = engine.run(
            np.zeros(2), ThermodynamicState(), MDParams(n_steps=10), rng
        )
        d = res.as_dict()
        assert d["n_steps"] == 10
        assert d["potential_energy"] == res.potential_energy


class TestRunBatch:
    def test_batch_matches_count(self, engine, rng):
        coords = np.zeros((6, 2))
        results = engine.run_batch(
            coords, ThermodynamicState(), MDParams(n_steps=50), rng
        )
        assert len(results) == 6
        for r in results:
            assert r.final_coords.shape == (2,)

    def test_batch_rejects_bad_shape(self, engine, rng):
        with pytest.raises(ValueError):
            engine.run_batch(
                np.zeros((3, 3)), ThermodynamicState(), MDParams(), rng
            )


class TestSinglePoint:
    def test_matches_forcefield(self, engine):
        coords = np.radians([-100.0, 120.0])
        state = ThermodynamicState(salt_molar=0.3)
        e = engine.single_point_energy(coords, state)
        expected = float(
            engine.forcefield.energy(coords[0], coords[1], salt_molar=0.3)
        )
        assert e == pytest.approx(expected)

    def test_includes_restraints(self, engine):
        coords = np.radians([0.0, 0.0])
        r = UmbrellaRestraint("phi", 90.0, 0.02)
        state = ThermodynamicState(restraints=(r,))
        with_r = engine.single_point_energy(coords, state)
        without_r = engine.single_point_energy(
            coords, state, include_restraints=False
        )
        assert with_r - without_r == pytest.approx(0.02 * 90.0**2)

    def test_restraint_energy_helper(self, engine):
        coords = np.radians([45.0, 0.0])
        r = UmbrellaRestraint("phi", 0.0, 0.01)
        state = ThermodynamicState(restraints=(r,))
        assert engine.restraint_energy(coords, state) == pytest.approx(
            0.01 * 45.0**2
        )

    def test_salt_changes_single_point(self, engine):
        coords = np.radians([30.0, -30.0])
        e0 = engine.single_point_energy(coords, ThermodynamicState(salt_molar=0.0))
        e1 = engine.single_point_energy(coords, ThermodynamicState(salt_molar=2.0))
        assert e0 != e1

    def test_bad_coords_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.single_point_energy(np.zeros(1), ThermodynamicState())

"""Crash/resume equivalence under gray failures.

The hard case for checkpoint/restart in this PR: kill the run while a
speculative duplicate launch is *in flight* — the straggler and its
shadow both racing for the same completion — and require the resumed
run to reproduce the uninterrupted reference exactly.  The checkpoint
never sees the in-flight attempt (sync snapshots happen at cycle
boundaries), but the gray RNG streams (hang draws, watchdog backoff)
and the watchdog's completion history must round-trip for the replayed
cycle to land on the same trajectory.
"""

import pytest

from repro.core.chaos import builtin_scenarios
from repro.core.framework import RepEx
from repro.obs.metrics import MetricsRegistry, using_registry
from repro.pilot.events import SimulatedCrash


def _scenario(name):
    return {s.name: s for s in builtin_scenarios(fast=True)}[name]


def _run(config, **kwargs):
    with using_registry(MetricsRegistry()):
        return RepEx(config, **kwargs).run()


class TestResumeWithPendingSpeculative:
    def test_crash_between_speculative_launch_and_win(self, tmp_path):
        scenario = _scenario("slow-node/speculative/sync")
        # boundary capture does not perturb the sync timeline, so the
        # checkpointing run doubles as the reference
        reference = _run(
            scenario.config,
            checkpoint_every=1,
            checkpoint_dir=tmp_path / "ref",
        )
        events = reference.manifest.fault_events
        # a crash is only resumable once the first boundary snapshot is
        # on disk, so target a speculative race from cycle >= 1
        t_first_boundary = reference.cycle_timings[0].t_end
        launches = [
            e["t"]
            for e in events
            if e["fault"] == "speculative_launch" and e["t"] > t_first_boundary
        ]
        settled = [
            e["t"]
            for e in events
            if e["fault"] in ("speculative_win", "speculative_loss")
        ]
        assert launches, "no speculation after cycle 0 — rebalance the scenario"
        t_launch = launches[0]
        t_settle = min(t for t in settled if t > t_launch)
        crash_at = (t_launch + t_settle) / 2.0

        ckpt_dir = tmp_path / "ckpt"
        with using_registry(MetricsRegistry()):
            with pytest.raises(SimulatedCrash):
                RepEx(
                    scenario.config,
                    checkpoint_every=1,
                    checkpoint_dir=ckpt_dir,
                    crash_at_time=crash_at,
                ).run()
        resumed = _run(
            scenario.config,
            checkpoint_every=1,
            checkpoint_dir=ckpt_dir,
            resume_from=ckpt_dir / "latest.json",
        )
        assert resumed.fingerprint() == reference.fingerprint()


class TestGrayRerunDeterminism:
    """Knobs-on chaos scenarios are byte-identical across reruns."""

    @pytest.mark.parametrize(
        "name",
        [
            "slow-node/speculative/sync",
            "hangs/watchdog-relaunch/sync",
            "slow-node/barrier-deadline/sync",
        ],
    )
    def test_rerun_fingerprint_identical(self, name):
        scenario = _scenario(name)
        first = _run(scenario.config)
        second = _run(scenario.config)
        assert first.fingerprint() == second.fingerprint()

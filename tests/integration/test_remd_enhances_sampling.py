"""The headline scientific claim, end to end.

Replica exchange exists because direct MD at low temperature stays trapped
in its initial basin.  This test runs the whole stack — config, pilot,
engine adapter, exchanges, WHAM, PMF — and shows that the cold window of
a T-REMD simulation recovers the exact (quadrature) PMF far better than
direct MD at the same temperature and comparable cost.
"""

import numpy as np
import pytest

from repro.analysis.pmf import analytic_pmf, pmf_from_surface, pmf_rmsd
from repro.analysis.wham import Grid2D, WindowData, wham_2d
from repro.core import RepEx
from repro.core.config import (
    DimensionSpec,
    EngineSpec,
    ResourceSpec,
    SimulationConfig,
)
from repro.md.forcefield import ForceField
from repro.md.integrators import BrownianIntegrator

T_COLD = 450.0


def remd_cold_window_pmf_rmsd():
    cfg = SimulationConfig(
        title="tremd-pmf",
        engine=EngineSpec(name="amber", system="ala2-vac"),
        dimensions=[
            DimensionSpec("temperature", 8, T_COLD, 700.0)
        ],
        resource=ResourceSpec("supermic", cores=8),
        n_cycles=40,
        steps_per_cycle=6000,
        numeric_steps=600,
        sample_stride=20,
        seed=9,
    )
    res = RepEx(cfg).run()
    assert res.acceptance_ratio("temperature") > 0.5  # vacuum ladder

    chunks = [
        rec.trajectory
        for rep in res.replicas
        for rec in rep.history
        if rec.param_indices["temperature"] == 0
        and rec.trajectory is not None
        and rec.cycle >= 8
    ]
    samples = np.concatenate(chunks)
    surface = wham_2d(
        [WindowData(restraints=(), samples=samples)],
        T_COLD,
        grid=Grid2D(n_bins=24),
    )
    _, pmf = pmf_from_surface(surface, T_COLD, axis="phi")
    _, ref = analytic_pmf(ForceField(), T_COLD, axis="phi", n_bins=24)
    return pmf_rmsd(pmf, ref, cutoff_kcal=5.0)


def direct_md_pmf_rmsd():
    ff = ForceField()
    integ = BrownianIntegrator(ff)
    rng = np.random.default_rng(0)
    x0 = rng.uniform(-np.pi, np.pi, size=(128, 2))
    _, samples = integ.run(x0, 20000, T_COLD, rng, sample_stride=20)
    samples = samples[len(samples) // 5 :].reshape(-1, 2)
    surface = wham_2d(
        [WindowData(restraints=(), samples=samples)],
        T_COLD,
        grid=Grid2D(n_bins=24),
    )
    _, pmf = pmf_from_surface(surface, T_COLD, axis="phi")
    _, ref = analytic_pmf(ff, T_COLD, axis="phi", n_bins=24)
    return pmf_rmsd(pmf, ref, cutoff_kcal=5.0)


def test_remd_beats_direct_md_at_low_temperature():
    rmsd_remd = remd_cold_window_pmf_rmsd()
    rmsd_direct = direct_md_pmf_rmsd()
    # REMD must both beat direct MD decisively and be accurate in
    # absolute terms
    assert rmsd_remd < 0.35, rmsd_remd
    assert rmsd_direct > 2.0 * rmsd_remd, (rmsd_direct, rmsd_remd)

"""Campaign stress/soak test: hundreds of real sessions, one process.

A 50-tenant campaign of 200 mixed synchronous/asynchronous RepEx
sessions — each a real inner simulation on its own virtual clock and
private registry — runs against a shared datacenter with injected node
crashes.  Every manifest on disk must parse and validate, per-tenant
accounting must sum to the datacenter totals, and the whole campaign
must be seed-deterministic: a second run produces byte-identical
per-tenant manifests and an identical audit log.
"""

import json
from pathlib import Path

import pytest

from repro.campaign.service import run_campaign
from repro.campaign.spec import (
    CampaignSpec,
    DatacenterSpec,
    FaultSpec,
    TenantSpec,
)
from repro.obs.manifest import RunManifest

N_TENANTS = 50
SESSIONS_PER_TENANT = 4  # 2 patterns x 2 ladder sizes


def tiny_base(index: int) -> dict:
    """A minimal-but-real session config (~milliseconds of wallclock)."""
    return {
        "title": f"soak-{index:02d}",
        "dimensions": [
            {
                "kind": "temperature",
                "n_windows": 2,
                "min_value": 300.0,
                "max_value": 320.0 + index,
            }
        ],
        "resource": {"name": "small-cluster", "cores": 4},
        "n_cycles": 1,
        "steps_per_cycle": 500,
        "numeric_steps": 1,
        "sample_stride": 0,
        "seed": 100 + index,
    }


def soak_spec() -> CampaignSpec:
    tenants = [
        TenantSpec(
            name=f"tenant{i:02d}",
            weight=1.0 + (i % 3),
            priority=i % 2,
            quota_cores=16,
            quota_sessions=3,
            base=tiny_base(i),
            grid={
                "pattern.kind": ["synchronous", "asynchronous"],
                "dimensions.0.n_windows": [2, 3],
            },
        )
        for i in range(N_TENANTS)
    ]
    return CampaignSpec(
        title="soak",
        seed=424242,
        datacenter=DatacenterSpec(nodes=16, cores_per_node=8, repair_s=120.0),
        faults=FaultSpec(
            node_crashes=[[15.0, 0], [40.0, 3], [70.0, 7], [110.0, 0]]
        ),
        tenants=tenants,
        relaunch_limit=2,
    )


@pytest.fixture(scope="module")
def soak_runs(tmp_path_factory):
    """The campaign executed twice into separate manifest trees."""
    reports, dirs = [], []
    for label in ("first", "second"):
        out = tmp_path_factory.mktemp(f"soak_{label}")
        reports.append(run_campaign(soak_spec(), manifest_dir=out))
        dirs.append(Path(out))
    return reports, dirs


class TestScale:
    def test_campaign_is_200_plus_mixed_sessions(self, soak_runs):
        (report, _), _ = soak_runs
        assert len(report.records) == N_TENANTS * SESSIONS_PER_TENANT >= 200
        patterns = {
            (r.request.payload.get("pattern") or {}).get("kind")
            for r in report.records
        }
        assert patterns == {"synchronous", "asynchronous"}

    def test_faults_actually_fired_and_were_survived(self, soak_runs):
        (report, _), _ = soak_runs
        crashes = [e for e in report.audit if e["event"] == "crash"]
        assert crashes, "no crash event fired — fault injection inert"
        killed = [uid for e in crashes for uid in e["killed"]]
        assert killed, "no session was ever hit — crashes missed the load"
        # every session still reached a final verdict, and the relaunch
        # budget was generous enough that all of them completed
        from repro.campaign.arbiter import SessionState

        assert all(r.done for r in report.records)
        assert all(
            r.state is SessionState.DONE for r in report.records
        ), {r.request.uid: r.state.value for r in report.records
            if r.state is not SessionState.DONE}

    def test_every_manifest_on_disk_validates(self, soak_runs):
        (report, _), (out_dir, _) = soak_runs
        paths = sorted(out_dir.rglob("*.jsonl"))
        assert len(paths) == len(report.records)
        for path in paths:
            manifest = RunManifest.load(path)
            assert not manifest.recovered
            assert manifest.units, f"{path}: no units recorded"
            assert manifest.metrics, f"{path}: no metric snapshot"

    def test_per_tenant_accounting_sums_to_datacenter_totals(self, soak_runs):
        (report, _), _ = soak_runs
        tenant_total = sum(
            summary["core_seconds"] for summary in report.tenants.values()
        )
        assert tenant_total == pytest.approx(
            report.totals["busy_core_seconds"], rel=1e-9
        )
        # and the per-record attempt intervals recompute the same number
        recomputed = sum(
            record.request.cores * (end - start)
            for record in report.records
            for start, end in record.attempts
        )
        assert recomputed == pytest.approx(
            report.totals["busy_core_seconds"], rel=1e-9
        )

    def test_rerun_is_byte_identical(self, soak_runs):
        (first, second), (dir_a, dir_b) = soak_runs
        assert first.audit == second.audit
        assert first.totals == second.totals
        files_a = sorted(p.relative_to(dir_a) for p in dir_a.rglob("*.jsonl"))
        files_b = sorted(p.relative_to(dir_b) for p in dir_b.rglob("*.jsonl"))
        assert files_a == files_b
        for rel in files_a:
            assert (dir_a / rel).read_bytes() == (dir_b / rel).read_bytes(), (
                f"{rel}: manifests differ between identical runs"
            )

    def test_openmetrics_aggregation_covers_every_tenant(self, soak_runs):
        (report, _), _ = soak_runs
        text = report.openmetrics()
        assert text.endswith("# EOF\n")
        for i in range(N_TENANTS):
            assert f'tenant="tenant{i:02d}"' in text
        # inner-session metrics were summed per tenant, not dropped
        assert "exchange_attempted_total{" in text

    def test_report_serializes_to_json(self, soak_runs):
        (report, _), _ = soak_runs
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["totals"]["sessions"] == len(report.records)
        assert set(doc["tenants"]) == {
            f"tenant{i:02d}" for i in range(N_TENANTS)
        }

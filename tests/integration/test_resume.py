"""Kill + resume equivalence: a resumed run is bit-identical.

The acceptance bar for checkpoint/restart: stop a run — at a cycle
boundary (synchronous), at a quiesce point (asynchronous), or with a
hard mid-flight kill — rebuild the whole stack from the checkpoint, and
the combined trajectory — coordinates, energies, exchange decisions, RNG
draws, virtual-clock times, core-second accounting, and the full
observability manifest — matches the uninterrupted run exactly (no
tolerance).

For the asynchronous pattern "uninterrupted" means *with the same
checkpoint cadence*: a quiesce is an induced quiet point that perturbs
the timeline, so the golden run must quiesce at the same virtual times
the killed+resumed pair did.
"""

import json
from pathlib import Path

import pytest

from repro.core import RepEx
from repro.core.checkpoint import Checkpoint
from repro.core.config import FailureSpec, PatternSpec
from repro.obs.diff import diff_manifests
from repro.pilot.events import SimulatedCrash
from tests.conftest import small_tremd_config


def fingerprint(result):
    """Every observable of a run, as an exact (full-precision) JSON blob."""
    return json.dumps(
        {
            "t_end": result.t_end,
            "replicas": [
                {
                    "rid": rep.rid,
                    "coords": list(map(float, rep.coords)),
                    "param_indices": rep.param_indices,
                    "status": rep.status.value,
                    "n_failures": rep.n_failures,
                    "history": [
                        {
                            "cycle": rec.cycle,
                            "param_indices": rec.param_indices,
                            "potential_energy": rec.potential_energy,
                            "partner": rec.partner,
                            "accepted": rec.accepted,
                            "failed": rec.failed,
                            "trajectory": (
                                rec.trajectory.tolist()
                                if rec.trajectory is not None
                                else None
                            ),
                        }
                        for rec in rep.history
                    ],
                }
                for rep in result.replicas
            ],
            "exchange": {
                name: [stats.attempted, stats.accepted]
                for name, stats in result.exchange_stats.items()
            },
            "timings": [
                [c.cycle, c.t_md, c.t_ex, c.t_data, c.t_repex, c.t_rp, c.span]
                for c in result.cycle_timings
            ],
            "accounting": [
                result.md_core_seconds,
                result.exchange_core_seconds,
                result.n_failures,
                result.n_relaunches,
                result.n_retired,
            ],
        },
        sort_keys=True,
    )


def make_config(**over):
    return small_tremd_config(n_cycles=4, **over)


@pytest.mark.parametrize(
    "over",
    [
        {},
        {"failure": FailureSpec(probability=0.4, policy="relaunch")},
        {
            "failure": FailureSpec(
                policy="continue",
                staging_fault_probability=0.3,
                staging_max_retries=6,
            )
        },
    ],
    ids=["clean", "unit-failures", "staging-faults"],
)
def test_resume_is_bit_identical(tmp_path, over):
    baseline = RepEx(make_config(**over)).run()

    # "kill" the run at the cycle-2 boundary...
    first = RepEx(
        make_config(**over),
        checkpoint_every=2,
        checkpoint_dir=tmp_path,
        stop_after_cycle=2,
    )
    partial = first.run()
    assert partial.interrupted
    assert len(partial.cycle_timings) == 2

    # ...and continue from the file it left behind
    resumed = RepEx(
        make_config(**over), resume_from=tmp_path / "latest.json"
    ).run()
    assert not resumed.interrupted
    assert fingerprint(resumed) == fingerprint(baseline)


def test_resume_from_in_memory_checkpoint():
    baseline = RepEx(make_config()).run()
    first = RepEx(make_config(), checkpoint_every=2, stop_after_cycle=2)
    first.run()
    resumed = RepEx(make_config(), resume_from=first.checkpoints[-1]).run()
    assert fingerprint(resumed) == fingerprint(baseline)


def test_double_resume_chains(tmp_path):
    """Stop at 1, resume to 3, stop again, resume to the end."""
    baseline = RepEx(make_config()).run()
    RepEx(
        make_config(),
        checkpoint_every=1,
        checkpoint_dir=tmp_path,
        stop_after_cycle=1,
    ).run()
    middle = RepEx(
        make_config(),
        resume_from=tmp_path / "latest.json",
        checkpoint_every=1,
        checkpoint_dir=tmp_path,
        stop_after_cycle=3,
    )
    partial = middle.run()
    assert partial.interrupted
    assert len(partial.cycle_timings) == 3
    final = RepEx(
        make_config(), resume_from=tmp_path / "latest.json"
    ).run()
    assert fingerprint(final) == fingerprint(baseline)


def test_stop_without_checkpointing_marks_interrupted():
    result = RepEx(make_config(), stop_after_cycle=2).run()
    assert result.interrupted
    assert len(result.cycle_timings) == 2


# -- asynchronous pattern: quiesce checkpoints ------------------------------


#: quiesce cadence used throughout; the small async runs span ~700
#: virtual seconds, so this lands three quiesce points inside the run
CADENCE = 150.0


def async_config(**over):
    over.setdefault("pattern", PatternSpec(kind="asynchronous"))
    return small_tremd_config(n_cycles=4, **over)


def equivalent(golden, resumed):
    """Bit-identity in both senses: result fingerprint + manifest diff."""
    assert resumed.fingerprint() == golden.fingerprint()
    assert diff_manifests(golden.manifest, resumed.manifest).identical


class TestAsyncQuiesceResume:
    def test_stop_after_checkpoint_resumes_bit_identical(self, tmp_path):
        golden = RepEx(async_config(), checkpoint_every_s=CADENCE).run()

        first = RepEx(
            async_config(),
            checkpoint_every_s=CADENCE,
            checkpoint_dir=tmp_path,
            stop_after_checkpoint=1,
        )
        partial = first.run()
        assert partial.interrupted
        assert len(first.checkpoints) == 1
        assert first.checkpoints[0].pattern == "asynchronous"
        assert (tmp_path / "quiesce_0001.json").exists()

        resumed = RepEx(
            async_config(),
            checkpoint_every_s=CADENCE,
            resume_from=tmp_path / "latest.json",
        ).run()
        assert not resumed.interrupted
        equivalent(golden, resumed)

    def test_crash_mid_flight_resumes_bit_identical(self, tmp_path):
        golden = RepEx(async_config(), checkpoint_every_s=CADENCE).run()

        crash_at = golden.t_start + 0.8 * golden.wallclock
        with pytest.raises(SimulatedCrash):
            RepEx(
                async_config(),
                checkpoint_every_s=CADENCE,
                checkpoint_dir=tmp_path,
                crash_at_time=crash_at,
            ).run()

        resumed = RepEx(
            async_config(),
            checkpoint_every_s=CADENCE,
            resume_from=tmp_path / "latest.json",
        ).run()
        equivalent(golden, resumed)

    def test_crash_resume_with_staging_faults(self, tmp_path):
        over = dict(
            failure=FailureSpec(
                policy="continue",
                staging_fault_probability=0.3,
                staging_max_retries=6,
            )
        )
        golden = RepEx(async_config(**over), checkpoint_every_s=CADENCE).run()
        crash_at = golden.t_start + 0.75 * golden.wallclock
        with pytest.raises(SimulatedCrash):
            RepEx(
                async_config(**over),
                checkpoint_every_s=CADENCE,
                checkpoint_dir=tmp_path,
                crash_at_time=crash_at,
            ).run()
        resumed = RepEx(
            async_config(**over),
            checkpoint_every_s=CADENCE,
            resume_from=tmp_path / "latest.json",
        ).run()
        # fault injection races the quiesce drain, so the manifest's
        # fault log can differ in timing; the physics must not
        assert resumed.fingerprint() == golden.fingerprint()

    def test_double_resume_chains_async(self, tmp_path):
        golden = RepEx(async_config(), checkpoint_every_s=CADENCE).run()
        RepEx(
            async_config(),
            checkpoint_every_s=CADENCE,
            checkpoint_dir=tmp_path,
            stop_after_checkpoint=1,
        ).run()
        middle = RepEx(
            async_config(),
            checkpoint_every_s=CADENCE,
            checkpoint_dir=tmp_path,
            resume_from=tmp_path / "latest.json",
            stop_after_checkpoint=2,
        )
        partial = middle.run()
        assert partial.interrupted
        final = RepEx(
            async_config(),
            checkpoint_every_s=CADENCE,
            resume_from=tmp_path / "latest.json",
        ).run()
        equivalent(golden, final)

    def test_preempt_warning_induces_checkpoint(self, tmp_path):
        """A preemption warning quiesces once, ahead of the preemption,
        with no periodic cadence configured."""
        over = dict(
            failure=FailureSpec(
                policy="relaunch",
                preempt_after_s=400.0,
                requeue_on_preempt=True,
                preempt_warning_s=60.0,
            )
        )
        repex = RepEx(async_config(**over), checkpoint_dir=tmp_path)
        repex.run()
        assert len(repex.checkpoints) == 1
        assert (tmp_path / "quiesce_0001.json").exists()
        ckpt = repex.checkpoints[0]
        # the quiesce begins at the warning time (400 - 60)
        assert ckpt.t_now >= 340.0

    def test_quiesce_counters_and_spans_reach_manifest(self):
        result = RepEx(async_config(), checkpoint_every_s=CADENCE).run()
        counters = result.manifest.metrics["counters"]
        assert counters["checkpoint.captured"] >= 2
        # a quiesce triggered close to the end may never capture (the run
        # drains to completion first), so triggers >= captures
        assert counters["checkpoint.quiesces"] >= counters[
            "checkpoint.captured"
        ]
        # one finished span per capture (an uncaptured quiesce never ends
        # its span)
        quiesce_spans = result.manifest.spans_named("quiesce")
        assert len(quiesce_spans) == int(counters["checkpoint.captured"])
        assert all(
            s.tags["pattern"] == "asynchronous" for s in quiesce_spans
        )


# -- synchronous pattern: crash mid-cycle -----------------------------------


class TestSyncCrashMidCycle:
    def test_crash_mid_cycle_rolls_back_to_boundary(self, tmp_path):
        # cycle-boundary capture does not perturb the sync timeline, so
        # the cadence-matched golden equals the plain baseline
        golden = RepEx(make_config(), checkpoint_every=1).run()
        boundaries = [c.t_end for c in golden.cycle_timings]

        # kill inside cycle 2 (between the first and second boundary)
        crash_at = (boundaries[0] + boundaries[1]) / 2
        with pytest.raises(SimulatedCrash):
            RepEx(
                make_config(),
                checkpoint_every=1,
                checkpoint_dir=tmp_path,
                crash_at_time=crash_at,
            ).run()

        # only the cycle-1 boundary made it to disk: the killed cycle
        # rolls back and replays
        latest = Checkpoint.load(tmp_path / "latest.json")
        assert latest.next_cycle == 1

        resumed = RepEx(
            make_config(),
            checkpoint_every=1,
            resume_from=tmp_path / "latest.json",
        ).run()
        assert len(resumed.cycle_timings) == len(golden.cycle_timings)
        equivalent(golden, resumed)

    def test_crash_with_unit_failures_resumes_identically(self, tmp_path):
        over = dict(failure=FailureSpec(probability=0.4, policy="relaunch"))
        golden = RepEx(make_config(**over), checkpoint_every=1).run()
        crash_at = golden.t_start + 0.6 * golden.wallclock
        with pytest.raises(SimulatedCrash):
            RepEx(
                make_config(**over),
                checkpoint_every=1,
                checkpoint_dir=tmp_path,
                crash_at_time=crash_at,
            ).run()
        resumed = RepEx(
            make_config(**over),
            checkpoint_every=1,
            resume_from=tmp_path / "latest.json",
        ).run()
        equivalent(golden, resumed)

    def test_crash_before_first_checkpoint_leaves_nothing(self, tmp_path):
        golden = RepEx(make_config(), checkpoint_every=1).run()
        crash_at = golden.t_start + 0.1 * golden.wallclock  # inside cycle 1
        with pytest.raises(SimulatedCrash):
            RepEx(
                make_config(),
                checkpoint_every=1,
                checkpoint_dir=tmp_path,
                crash_at_time=crash_at,
            ).run()
        assert not (tmp_path / "latest.json").exists()


# -- checkpoint compaction --------------------------------------------------


class TestCompaction:
    def test_keep_prunes_numbered_snapshots(self, tmp_path):
        RepEx(
            make_config(),
            checkpoint_every=1,
            checkpoint_dir=tmp_path,
            checkpoint_keep=2,
        ).run()
        numbered = sorted(p.name for p in tmp_path.glob("cycle_*.json"))
        assert numbered == ["cycle_0002.json", "cycle_0003.json"]
        assert (
            Checkpoint.load(tmp_path / "latest.json").to_json()
            == Checkpoint.load(tmp_path / "cycle_0003.json").to_json()
        )

    def test_keep_applies_to_quiesce_snapshots(self, tmp_path):
        repex = RepEx(
            async_config(),
            checkpoint_every_s=CADENCE,
            checkpoint_dir=tmp_path,
            checkpoint_keep=1,
        )
        repex.run()
        assert len(repex.checkpoints) >= 2
        numbered = list(tmp_path.glob("quiesce_*.json"))
        assert len(numbered) == 1
        Checkpoint.load(numbered[0])

    def test_zero_keeps_everything(self, tmp_path):
        RepEx(
            make_config(), checkpoint_every=1, checkpoint_dir=tmp_path
        ).run()
        assert len(list(tmp_path.glob("cycle_*.json"))) == 3

    def test_prune_is_write_new_then_delete(self, tmp_path, monkeypatch):
        """At the instant any snapshot is unlinked, a strictly newer one
        is already on disk and loadable — a kill mid-prune can never take
        the last checkpoint with it."""
        real_unlink = Path.unlink
        pruned = []

        def checked_unlink(self, *args, **kwargs):
            if self.parent == tmp_path:
                newer = [
                    p
                    for p in self.parent.glob("cycle_*.json")
                    if p.name > self.name
                ]
                assert newer, f"pruning {self.name} with nothing newer on disk"
                Checkpoint.load(max(newer))
                pruned.append(self.name)
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", checked_unlink)
        RepEx(
            make_config(),
            checkpoint_every=1,
            checkpoint_dir=tmp_path,
            checkpoint_keep=1,
        ).run()
        assert pruned == ["cycle_0001.json", "cycle_0002.json"]

    def test_failed_delete_never_kills_the_run(self, tmp_path, monkeypatch):
        calls = []

        def failing_unlink(self, *args, **kwargs):
            calls.append(self.name)
            raise OSError("disk says no")

        monkeypatch.setattr(Path, "unlink", failing_unlink)
        result = RepEx(
            make_config(),
            checkpoint_every=1,
            checkpoint_dir=tmp_path,
            checkpoint_keep=1,
        ).run()
        assert calls  # pruning was attempted...
        assert not result.interrupted  # ...and the run finished anyway
        # nothing was actually deleted, and everything still loads
        assert len(list(tmp_path.glob("cycle_*.json"))) == 3
        Checkpoint.load(tmp_path / "latest.json")

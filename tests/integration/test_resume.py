"""Kill + resume equivalence: a resumed run is bit-identical.

The acceptance bar for checkpoint/restart: stop a synchronous run at a
cycle boundary, rebuild the whole stack from the checkpoint, and the
combined trajectory — coordinates, energies, exchange decisions, RNG
draws, virtual-clock times, core-second accounting — matches the
uninterrupted run exactly (no tolerance).
"""

import json

import pytest

from repro.core import RepEx
from repro.core.config import FailureSpec
from tests.conftest import small_tremd_config


def fingerprint(result):
    """Every observable of a run, as an exact (full-precision) JSON blob."""
    return json.dumps(
        {
            "t_end": result.t_end,
            "replicas": [
                {
                    "rid": rep.rid,
                    "coords": list(map(float, rep.coords)),
                    "param_indices": rep.param_indices,
                    "status": rep.status.value,
                    "n_failures": rep.n_failures,
                    "history": [
                        {
                            "cycle": rec.cycle,
                            "param_indices": rec.param_indices,
                            "potential_energy": rec.potential_energy,
                            "partner": rec.partner,
                            "accepted": rec.accepted,
                            "failed": rec.failed,
                            "trajectory": (
                                rec.trajectory.tolist()
                                if rec.trajectory is not None
                                else None
                            ),
                        }
                        for rec in rep.history
                    ],
                }
                for rep in result.replicas
            ],
            "exchange": {
                name: [stats.attempted, stats.accepted]
                for name, stats in result.exchange_stats.items()
            },
            "timings": [
                [c.cycle, c.t_md, c.t_ex, c.t_data, c.t_repex, c.t_rp, c.span]
                for c in result.cycle_timings
            ],
            "accounting": [
                result.md_core_seconds,
                result.exchange_core_seconds,
                result.n_failures,
                result.n_relaunches,
                result.n_retired,
            ],
        },
        sort_keys=True,
    )


def make_config(**over):
    return small_tremd_config(n_cycles=4, **over)


@pytest.mark.parametrize(
    "over",
    [
        {},
        {"failure": FailureSpec(probability=0.4, policy="relaunch")},
        {
            "failure": FailureSpec(
                policy="continue",
                staging_fault_probability=0.3,
                staging_max_retries=6,
            )
        },
    ],
    ids=["clean", "unit-failures", "staging-faults"],
)
def test_resume_is_bit_identical(tmp_path, over):
    baseline = RepEx(make_config(**over)).run()

    # "kill" the run at the cycle-2 boundary...
    first = RepEx(
        make_config(**over),
        checkpoint_every=2,
        checkpoint_dir=tmp_path,
        stop_after_cycle=2,
    )
    partial = first.run()
    assert partial.interrupted
    assert len(partial.cycle_timings) == 2

    # ...and continue from the file it left behind
    resumed = RepEx(
        make_config(**over), resume_from=tmp_path / "latest.json"
    ).run()
    assert not resumed.interrupted
    assert fingerprint(resumed) == fingerprint(baseline)


def test_resume_from_in_memory_checkpoint():
    baseline = RepEx(make_config()).run()
    first = RepEx(make_config(), checkpoint_every=2, stop_after_cycle=2)
    first.run()
    resumed = RepEx(make_config(), resume_from=first.checkpoints[-1]).run()
    assert fingerprint(resumed) == fingerprint(baseline)


def test_double_resume_chains(tmp_path):
    """Stop at 1, resume to 3, stop again, resume to the end."""
    baseline = RepEx(make_config()).run()
    RepEx(
        make_config(),
        checkpoint_every=1,
        checkpoint_dir=tmp_path,
        stop_after_cycle=1,
    ).run()
    middle = RepEx(
        make_config(),
        resume_from=tmp_path / "latest.json",
        checkpoint_every=1,
        checkpoint_dir=tmp_path,
        stop_after_cycle=3,
    )
    partial = middle.run()
    assert partial.interrupted
    assert len(partial.cycle_timings) == 3
    final = RepEx(
        make_config(), resume_from=tmp_path / "latest.json"
    ).run()
    assert fingerprint(final) == fingerprint(baseline)


def test_stop_without_checkpointing_marks_interrupted():
    result = RepEx(make_config(), stop_after_cycle=2).run()
    assert result.interrupted
    assert len(result.cycle_timings) == 2

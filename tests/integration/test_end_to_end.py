"""End-to-end integration tests across pilot, md, core and analysis."""

import numpy as np
import pytest

from repro.analysis.acceptance import acceptance_by_dimension
from repro.analysis.timings import weak_scaling_efficiency
from repro.core import RepEx, run_simulation
from repro.core.config import (
    DimensionSpec,
    EngineSpec,
    PatternSpec,
    ResourceSpec,
    SimulationConfig,
)

from tests.conftest import small_tremd_config


class TestPaperValidationSetup:
    """A scaled-down version of the paper's Sec. 3.4 validation: TUU with
    6 T x (u x u) windows."""

    def test_tuu_run(self):
        cfg = SimulationConfig(
            title="validation-mini",
            dimensions=[
                DimensionSpec("temperature", 3, 273.0, 373.0),
                DimensionSpec(
                    "umbrella", 2, 0.0, 360.0, angle="phi",
                    force_constant=0.0006,
                ),
                DimensionSpec(
                    "umbrella", 2, 0.0, 360.0, angle="psi",
                    force_constant=0.0006,
                ),
            ],
            resource=ResourceSpec("stampede", cores=12),
            n_cycles=6,
            steps_per_cycle=20000,
            numeric_steps=60,
            sample_stride=10,
        )
        res = RepEx(cfg).run()
        assert res.n_replicas == 12
        assert res.type_string == "TUU"
        ratios = acceptance_by_dimension(res.proposals)
        assert set(ratios) <= {
            "temperature", "umbrella_phi", "umbrella_psi",
        }
        # trajectories recorded for FES analysis
        n_samples = sum(
            rec.trajectory.shape[0]
            for r in res.replicas
            for rec in r.history
            if rec.trajectory is not None
        )
        assert n_samples > 0


class TestWeakScalingShape:
    def test_efficiency_decreases_with_replicas(self):
        """Mini version of Fig. 7: weak-scaling efficiency declines."""
        times = []
        for n in (4, 16, 64):
            cfg = small_tremd_config(
                dimensions=[DimensionSpec("temperature", n, 273.0, 373.0)],
                resource=ResourceSpec("supermic", cores=n),
                n_cycles=2,
                numeric_steps=10,
            )
            times.append(RepEx(cfg).run().average_cycle_time())
        eff = weak_scaling_efficiency(times)
        assert eff[0] == 100.0
        assert eff[1] < 100.0
        assert eff[2] < eff[1]


class TestEngineSwap:
    def test_amber_and_namd_same_framework_path(self):
        """The paper's 'minimal conceptual or implementation changes'."""
        results = {}
        for engine in ("amber", "namd"):
            cfg = small_tremd_config(
                engine=EngineSpec(name=engine),
                steps_per_cycle=4000,
            )
            results[engine] = RepEx(cfg).run()
        for res in results.values():
            assert len(res.cycle_timings) == 2
            assert res.exchange_stats["temperature"].attempted > 0
        # NAMD MD phase is costlier per step at this size (Fig. 8 vs 6)
        assert (
            results["namd"].mean_component("t_md")
            > results["amber"].mean_component("t_md")
        )


class TestExchangePhysics:
    def test_hot_replicas_have_higher_energy(self):
        """Canonical ordering: mean potential energy rises with T."""
        cfg = small_tremd_config(
            dimensions=[DimensionSpec("temperature", 4, 273.0, 500.0)],
            n_cycles=6,
            numeric_steps=100,
        )
        res = RepEx(cfg).run()
        by_window = {}
        for rep in res.replicas:
            for rec in rep.history:
                w = rec.param_indices["temperature"]
                by_window.setdefault(w, []).append(rec.potential_energy)
        means = [np.mean(by_window[w]) for w in sorted(by_window)]
        assert means[-1] > means[0]

    def test_acceptance_decreases_with_ladder_gap(self):
        """Wider temperature spacing -> lower acceptance."""
        ratios = []
        for t_max in (300.0, 400.0):
            cfg = small_tremd_config(
                dimensions=[
                    DimensionSpec("temperature", 4, 280.0, t_max)
                ],
                n_cycles=8,
                numeric_steps=10,
            )
            res = RepEx(cfg).run()
            ratios.append(res.acceptance_ratio("temperature"))
        assert ratios[0] > ratios[1]


class TestAsyncVsSyncIntegration:
    def test_same_sampling_different_utilization(self):
        base = dict(n_cycles=3, numeric_steps=20)
        sync = RepEx(small_tremd_config(**base)).run()
        async_ = RepEx(
            small_tremd_config(
                pattern=PatternSpec(
                    kind="asynchronous", window_seconds=60.0
                ),
                **base,
            )
        ).run()
        assert sync.utilization() > async_.utilization()
        for res in (sync, async_):
            for rep in res.replicas:
                assert len(rep.history) == 3


class TestConfigDrivenRun:
    def test_from_json_to_result(self):
        """The paper's usability requirement: a run is fully specified by a
        configuration file."""
        text = """
        {
          "title": "json-driven",
          "engine": {"name": "amber", "system": "ala2"},
          "resource": {"name": "supermic", "cores": 4},
          "dimensions": [
            {"kind": "temperature", "n_windows": 4,
             "min_value": 273.0, "max_value": 373.0}
          ],
          "n_cycles": 2,
          "steps_per_cycle": 6000,
          "numeric_steps": 10,
          "seed": 11
        }
        """
        cfg = SimulationConfig.from_json(text)
        res = run_simulation(cfg)
        assert res.title == "json-driven"
        assert len(res.cycle_timings) == 2

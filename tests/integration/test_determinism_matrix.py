"""Determinism matrix: every configuration class replays bit-identically.

HPC reproducibility guarantee: with a fixed seed, the virtual-clock
timeline, exchange decisions and final replica states are exact functions
of the configuration — across patterns, engines, modes and dimensions.
"""

import numpy as np
import pytest

from repro.core import RepEx
from repro.core.config import (
    DimensionSpec,
    EngineSpec,
    FailureSpec,
    PatternSpec,
    ResourceSpec,
)

from tests.conftest import small_tremd_config

SCENARIOS = {
    "sync-t": dict(),
    "async-t": dict(
        pattern=PatternSpec(kind="asynchronous", window_seconds=60.0)
    ),
    "mode2": dict(
        dimensions=[DimensionSpec("temperature", 8, 273.0, 373.0)],
        resource=ResourceSpec("supermic", cores=2),
    ),
    "namd": dict(engine=EngineSpec(name="namd"), steps_per_cycle=4000),
    "salt": dict(
        dimensions=[DimensionSpec("salt", 4, 0.0, 1.0)],
    ),
    "tsu": dict(
        dimensions=[
            DimensionSpec("temperature", 2, 273.0, 373.0),
            DimensionSpec("salt", 2, 0.0, 1.0),
            DimensionSpec(
                "umbrella", 2, 0.0, 360.0, force_constant=0.0005
            ),
        ],
        resource=ResourceSpec("supermic", cores=8),
        n_cycles=3,
    ),
    "failures": dict(
        failure=FailureSpec(probability=0.3, policy="relaunch"),
        numeric_steps=10,
    ),
}


def fingerprint(result):
    """A structural digest of everything a run produced."""
    return (
        round(result.t_end, 9),
        tuple(
            (round(c.t_md, 9), round(c.t_ex, 9), round(c.span, 9))
            for c in result.cycle_timings
        ),
        tuple(
            (p.rid_i, p.rid_j, p.accepted, round(p.delta, 9))
            for p in result.proposals
        ),
        tuple(
            (r.rid, tuple(sorted(r.param_indices.items())),
             tuple(np.round(r.coords, 12)))
            for r in result.replicas
        ),
        result.n_failures,
        result.n_relaunches,
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_replay_is_bit_identical(name):
    overrides = SCENARIOS[name]
    a = RepEx(small_tremd_config(**overrides)).run()
    b = RepEx(small_tremd_config(**overrides)).run()
    assert fingerprint(a) == fingerprint(b)


def test_different_seeds_differ():
    a = RepEx(small_tremd_config(seed=1)).run()
    b = RepEx(small_tremd_config(seed=2)).run()
    assert fingerprint(a) != fingerprint(b)


# -- crash/resume matrix ----------------------------------------------------
#
# Kill a checkpointing run at a chosen point in its timeline, restart it
# from the newest on-disk snapshot, and require the stitched run to be
# bit-identical — result fingerprint AND all-zero manifest diff — to the
# uninterrupted cadence-matched golden.  Cells cover both patterns, 1D
# T-REMD and a 2D TU ladder, and three kill classes: mid-cycle (or
# mid-flight), right at/after a quiet point, and during staging (shortly
# after a boundary, while the next cycle's inputs are being staged; the
# staging-fault cells additionally have transient faults in flight).

from repro.core.config import PatternSpec  # noqa: E402
from repro.obs.diff import diff_manifests  # noqa: E402
from repro.pilot.events import SimulatedCrash  # noqa: E402

TU2D = dict(
    dimensions=[
        DimensionSpec("temperature", 2, 273.0, 373.0),
        DimensionSpec("umbrella", 2, 0.0, 360.0, force_constant=0.0005),
    ],
    resource=ResourceSpec("supermic", cores=4),
    n_cycles=3,
)

STAGING_FAULTS = dict(
    failure=FailureSpec(
        policy="continue",
        staging_fault_probability=0.3,
        staging_max_retries=6,
    )
)

#: name -> (pattern kind, config overrides, kill fraction of the golden span)
RESUME_MATRIX = {
    "sync/tremd/mid-cycle": ("synchronous", {}, 0.45),
    "sync/tremd/at-boundary": ("synchronous", {}, 0.52),
    "sync/tremd/during-staging": ("synchronous", {}, 0.27),
    "sync/tu/mid-cycle": ("synchronous", TU2D, 0.5),
    "sync/staging-faults/during-staging": ("synchronous", STAGING_FAULTS, 0.27),
    "async/tremd/mid-flight": ("asynchronous", {}, 0.55),
    "async/tremd/at-quiesce": ("asynchronous", {}, 0.78),
    "async/tu/mid-flight": ("asynchronous", TU2D, 0.7),
    "async/staging-faults/mid-flight": ("asynchronous", STAGING_FAULTS, 0.6),
}


@pytest.mark.parametrize("name", sorted(RESUME_MATRIX))
def test_crash_resume_is_bit_identical(name, tmp_path):
    kind, overrides, kill_frac = RESUME_MATRIX[name]
    params = dict(n_cycles=4)
    params.update(overrides)
    if kind == "asynchronous":
        params["pattern"] = PatternSpec(kind="asynchronous")

    def build(**kwargs):
        return RepEx(small_tremd_config(**params), **kwargs)

    if kind == "synchronous":
        cadence = {"checkpoint_every": 1}
    else:
        span = build().run().wallclock
        cadence = {"checkpoint_every_s": span / 3}
    golden = build(**cadence).run()

    crash_at = golden.t_start + kill_frac * golden.wallclock
    with pytest.raises(SimulatedCrash):
        build(
            checkpoint_dir=tmp_path, crash_at_time=crash_at, **cadence
        ).run()
    assert (tmp_path / "latest.json").exists(), "no checkpoint before kill"

    resumed = build(
        resume_from=tmp_path / "latest.json", **cadence
    ).run()
    assert resumed.fingerprint() == golden.fingerprint()
    if "staging-faults" not in name:
        # fault injection races the drain, so the manifest's fault log
        # may shift in time; clean cells must diff all-zero
        assert diff_manifests(golden.manifest, resumed.manifest).identical

"""Determinism matrix: every configuration class replays bit-identically.

HPC reproducibility guarantee: with a fixed seed, the virtual-clock
timeline, exchange decisions and final replica states are exact functions
of the configuration — across patterns, engines, modes and dimensions.
"""

import numpy as np
import pytest

from repro.core import RepEx
from repro.core.config import (
    DimensionSpec,
    EngineSpec,
    FailureSpec,
    PatternSpec,
    ResourceSpec,
)

from tests.conftest import small_tremd_config

SCENARIOS = {
    "sync-t": dict(),
    "async-t": dict(
        pattern=PatternSpec(kind="asynchronous", window_seconds=60.0)
    ),
    "mode2": dict(
        dimensions=[DimensionSpec("temperature", 8, 273.0, 373.0)],
        resource=ResourceSpec("supermic", cores=2),
    ),
    "namd": dict(engine=EngineSpec(name="namd"), steps_per_cycle=4000),
    "salt": dict(
        dimensions=[DimensionSpec("salt", 4, 0.0, 1.0)],
    ),
    "tsu": dict(
        dimensions=[
            DimensionSpec("temperature", 2, 273.0, 373.0),
            DimensionSpec("salt", 2, 0.0, 1.0),
            DimensionSpec(
                "umbrella", 2, 0.0, 360.0, force_constant=0.0005
            ),
        ],
        resource=ResourceSpec("supermic", cores=8),
        n_cycles=3,
    ),
    "failures": dict(
        failure=FailureSpec(probability=0.3, policy="relaunch"),
        numeric_steps=10,
    ),
}


def fingerprint(result):
    """A structural digest of everything a run produced."""
    return (
        round(result.t_end, 9),
        tuple(
            (round(c.t_md, 9), round(c.t_ex, 9), round(c.span, 9))
            for c in result.cycle_timings
        ),
        tuple(
            (p.rid_i, p.rid_j, p.accepted, round(p.delta, 9))
            for p in result.proposals
        ),
        tuple(
            (r.rid, tuple(sorted(r.param_indices.items())),
             tuple(np.round(r.coords, 12)))
            for r in result.replicas
        ),
        result.n_failures,
        result.n_relaunches,
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_replay_is_bit_identical(name):
    overrides = SCENARIOS[name]
    a = RepEx(small_tremd_config(**overrides)).run()
    b = RepEx(small_tremd_config(**overrides)).run()
    assert fingerprint(a) == fingerprint(b)


def test_different_seeds_differ():
    a = RepEx(small_tremd_config(seed=1)).run()
    b = RepEx(small_tremd_config(seed=2)).run()
    assert fingerprint(a) != fingerprint(b)

"""Physics validation: REMD must sample correctly.

The heart of the reproduction is that exchanges are *real* Metropolis
moves on real energies, so sampling quality is testable, not just
plumbing.  These tests check canonical correctness end to end.
"""

import numpy as np
import pytest

from repro.core import RepEx
from repro.core.config import DimensionSpec, ResourceSpec, SimulationConfig
from repro.md import ForceField, MDParams, ThermodynamicState, ToyMD
from repro.utils.units import KB_KCAL_PER_MOL_K


class TestUnbiasedSamplingReference:
    def test_basin_populations_follow_boltzmann(self):
        """Long unbiased toy-MD at 300 K: the alpha-R basin outweighs the
        alpha-L basin by roughly exp(-dF/kT)."""
        engine = ToyMD()
        rng = np.random.default_rng(0)
        coords = np.tile(np.radians([-63.0, -42.0]), (64, 1))
        results = engine.run_batch(
            coords,
            ThermodynamicState(300.0),
            MDParams(n_steps=4000, sample_stride=20),
            rng,
        )
        samples = np.concatenate([r.trajectory for r in results])
        phi = np.degrees(samples[:, 0])
        psi = np.degrees(samples[:, 1])
        in_alpha_r = ((phi > -110) & (phi < -20) & (psi > -90) & (psi < 10)).sum()
        in_alpha_l = ((phi > 20) & (phi < 110) & (psi > 0) & (psi < 100)).sum()
        # alpha-L is ~3.8 kcal/mol above alpha-R: population ratio tiny
        assert in_alpha_r > 10 * max(in_alpha_l, 1)


class TestREMDSamplingConsistency:
    def test_t_remd_window_population_matches_direct_md(self):
        """The coldest window of a T-REMD run must sample the same
        distribution as a direct MD run at that temperature.

        This is the core correctness property of replica exchange: parameter
        swaps must not bias the per-window ensembles.
        """
        # REMD: 4 temperatures, tight ladder so exchanges actually happen
        cfg = SimulationConfig(
            title="consistency",
            dimensions=[DimensionSpec("temperature", 4, 290.0, 320.0)],
            resource=ResourceSpec("supermic", cores=4),
            n_cycles=30,
            steps_per_cycle=6000,
            numeric_steps=300,
            sample_stride=20,
            seed=1,
        )
        res = RepEx(cfg).run()
        assert res.acceptance_ratio("temperature") > 0.05

        remd_samples = []
        for rep in res.replicas:
            for rec in rep.history:
                if (
                    rec.param_indices.get("temperature") == 0
                    and rec.trajectory is not None
                    and rec.cycle >= 5
                ):
                    remd_samples.append(rec.trajectory)
        remd = np.concatenate(remd_samples)

        # direct MD at the same temperature
        engine = ToyMD()
        t0 = 290.0
        rng = np.random.default_rng(2)
        direct_results = engine.run_batch(
            np.tile(np.radians([-63.0, -42.0]), (32, 1)),
            ThermodynamicState(t0),
            MDParams(n_steps=3000, sample_stride=20),
            rng,
        )
        direct = np.concatenate(
            [r.trajectory[20:] for r in direct_results]
        )

        # compare mean energy of the sampled ensembles
        ff = ForceField()
        e_remd = ff.energy(remd[:, 0], remd[:, 1]).mean()
        e_direct = ff.energy(direct[:, 0], direct[:, 1]).mean()
        assert e_remd == pytest.approx(e_direct, abs=0.5)  # kcal/mol

    def test_umbrella_windows_sample_their_centers(self):
        """Each umbrella window's samples concentrate near its center."""
        cfg = SimulationConfig(
            title="umbrella-centers",
            dimensions=[
                DimensionSpec(
                    "umbrella", 6, 0.0, 360.0, angle="phi",
                    force_constant=0.002,
                )
            ],
            resource=ResourceSpec("supermic", cores=6),
            n_cycles=6,
            steps_per_cycle=6000,
            numeric_steps=400,
            sample_stride=20,
            seed=3,
        )
        res = RepEx(cfg).run()
        for rep in res.replicas:
            for rec in rep.history:
                if rec.trajectory is None or rec.cycle < 2:
                    continue
                w = rec.param_indices["umbrella_phi"]
                center = 60.0 * w
                phi_deg = np.degrees(rec.trajectory[:, 0])
                dist = np.abs(
                    (phi_deg - center + 180.0) % 360.0 - 180.0
                )
                # k = 0.002 -> sigma ~ 12 degrees
                assert dist.mean() < 40.0

    def test_exchange_preserves_detailed_balance_statistics(self):
        """For two replicas at equal temperature the swap always accepts
        (delta == 0), and window occupancy over time is uniform."""
        cfg = SimulationConfig(
            title="equal-t",
            dimensions=[DimensionSpec("temperature", 2, 300.0, 300.0)],
            resource=ResourceSpec("supermic", cores=2),
            n_cycles=10,
            steps_per_cycle=6000,
            numeric_steps=20,
            seed=4,
        )
        res = RepEx(cfg).run()
        stats = res.exchange_stats["temperature"]
        assert stats.attempted > 0
        assert stats.accepted == stats.attempted  # delta identically 0

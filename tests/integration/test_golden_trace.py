"""Golden-trace regression tests.

Fixed-seed runs must reproduce the checked-in unit timelines *byte for
byte*: the manifest timeline is ``[round(t, 6), unit_name, state]``
triples in event order, serialized with compact JSON.  Any change to the
scheduler pipeline, the performance model, the staging model or the EMM
phase structure shows up here as a diff against ``tests/fixtures/``.

Regenerate after an intentional timing-semantics change with::

    PYTHONPATH=src:. python tests/integration/test_golden_trace.py --regen
"""

import json
from pathlib import Path

from repro.core import RepEx
from repro.core.config import PatternSpec
from tests.conftest import small_tremd_config

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"

GOLDEN = {
    "golden_sync_timeline.json": lambda: small_tremd_config(),
    "golden_async_timeline.json": lambda: small_tremd_config(
        pattern=PatternSpec(kind="asynchronous", window_seconds=60.0),
        n_cycles=3,
    ),
}


def timeline_json(config) -> str:
    """The golden serialization: compact JSON of the manifest timeline."""
    result = RepEx(config).run()
    return json.dumps(result.manifest.timeline, separators=(",", ":"))


def test_sync_timeline_matches_golden():
    expected = (FIXTURES / "golden_sync_timeline.json").read_text()
    assert timeline_json(GOLDEN["golden_sync_timeline.json"]()) == expected


def test_async_timeline_matches_golden():
    expected = (FIXTURES / "golden_async_timeline.json").read_text()
    assert timeline_json(GOLDEN["golden_async_timeline.json"]()) == expected


def test_timeline_reproducible_within_session():
    """Two identical runs produce byte-identical timelines."""
    config = GOLDEN["golden_sync_timeline.json"]
    assert timeline_json(config()) == timeline_json(config())


def test_golden_timelines_are_nontrivial():
    """Guard against a silently empty fixture masking a broken tracer."""
    for name in GOLDEN:
        timeline = json.loads((FIXTURES / name).read_text())
        assert len(timeline) > 50
        states = {state for _, _, state in timeline}
        assert {"SCHEDULING", "EXECUTING", "DONE"} <= states


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("pass --regen to overwrite the golden fixtures")
    FIXTURES.mkdir(exist_ok=True)
    for name, config in GOLDEN.items():
        (FIXTURES / name).write_text(timeline_json(config()))
        print(f"wrote {FIXTURES / name}")

"""Smoke tests: the shipped examples must run cleanly end to end.

Only the fast examples are exercised (the Fig.-4 validation example takes
a minute and is covered by its benchmark); each is executed in-process and
its stdout checked for the landmark lines.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Cycle time decomposition" in out
        assert "T acceptance ratio" in out
        assert "permutation" in out

    def test_mremd_tsu(self, capsys):
        out = run_example("mremd_tsu.py", capsys)
        assert "Execution Mode II" in out
        assert "salt" in out
        assert "Acceptance ratios" in out

    def test_multi_cluster(self, capsys):
        out = run_example("multi_cluster.py", capsys)
        assert "stampede" in out
        assert "supermic" in out
        assert "two pilots active" in out

    def test_trace_timeline(self, capsys):
        out = run_example("trace_timeline.py", capsys)
        assert "Where the virtual time went" in out
        assert "EXECUTING" in out
        assert "Ladder mixing diagnostics" in out

    def test_async_fault_tolerance(self, capsys):
        out = run_example("async_fault_tolerance.py", capsys)
        assert "RE pattern comparison" in out
        assert "relaunch" in out

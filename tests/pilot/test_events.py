"""Tests for the DES event queue."""

import pytest

from repro.pilot.events import EventQueue, SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert EventQueue().now == 0.0

    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(3.0, lambda: fired.append("c"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(2.0, lambda: fired.append("b"))
        q.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_submission_order(self):
        q = EventQueue()
        fired = []
        for name in "abc":
            q.schedule(1.0, lambda n=name: fired.append(n))
        q.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        q = EventQueue()
        q.schedule(5.5, lambda: None)
        q.run()
        assert q.now == 5.5

    def test_callbacks_can_schedule_more(self):
        q = EventQueue()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                q.schedule(1.0, lambda: chain(n + 1))

        q.schedule(1.0, lambda: chain(1))
        q.run()
        assert fired == [1, 2, 3]
        assert q.now == 3.0

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        q = EventQueue()
        q.schedule(10.0, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule_at(5.0, lambda: None)


class TestCancel:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        fired = []
        e = q.schedule(1.0, lambda: fired.append("x"))
        e.cancel()
        q.run()
        assert fired == []

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        e1 = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        e1.cancel()
        assert len(q) == 1


class TestRunUntil:
    def test_stops_at_predicate(self):
        q = EventQueue()
        state = {"n": 0}
        for _ in range(10):
            q.schedule(1.0, lambda: state.__setitem__("n", state["n"] + 1))
        q.run_until(lambda: state["n"] >= 3)
        assert state["n"] == 3

    def test_deadlock_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError, match="deadlock"):
            q.run_until(lambda: False)

    def test_immediately_true_predicate_runs_nothing(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.run_until(lambda: True)
        assert fired == []


class TestAdvanceTo:
    def test_advance_idle_time(self):
        q = EventQueue()
        q.advance_to(42.0)
        assert q.now == 42.0

    def test_cannot_rewind(self):
        q = EventQueue()
        q.advance_to(10.0)
        with pytest.raises(SimulationError):
            q.advance_to(5.0)

    def test_cannot_skip_pending_events(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            q.advance_to(2.0)

    def test_can_advance_past_cancelled(self):
        q = EventQueue()
        e = q.schedule(1.0, lambda: None)
        e.cancel()
        q.advance_to(2.0)
        assert q.now == 2.0


class TestCounters:
    def test_n_fired(self):
        q = EventQueue()
        for _ in range(4):
            q.schedule(1.0, lambda: None)
        q.run()
        assert q.n_fired == 4

    def test_max_events_limit(self):
        q = EventQueue()
        for _ in range(10):
            q.schedule(1.0, lambda: None)
        q.run(max_events=3)
        assert q.n_fired == 3


class TestCancellationAccounting:
    def test_n_cancelled_tracks_dead_heap_entries(self):
        q = EventQueue()
        events = [q.schedule(1.0, lambda: None) for _ in range(5)]
        events[0].cancel()
        events[3].cancel()
        assert q.n_cancelled == 2
        assert len(q) == 3

    def test_cancel_is_idempotent_in_the_count(self):
        q = EventQueue()
        e = q.schedule(1.0, lambda: None)
        e.cancel()
        e.cancel()
        assert q.n_cancelled == 1
        assert len(q) == 0

    def test_pop_of_dead_event_decrements_count(self):
        q = EventQueue()
        e = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        e.cancel()
        q.run()
        assert q.n_cancelled == 0
        assert q.n_fired == 1

    def test_cancel_after_fire_does_not_corrupt_count(self):
        q = EventQueue()
        e = q.schedule(1.0, lambda: None)
        q.run()
        e.cancel()  # late cancel of an already-popped event
        assert q.n_cancelled == 0
        assert len(q) == 0

    def test_compaction_purges_dominating_dead_events(self):
        q = EventQueue()
        live = [q.schedule(10.0, lambda: None) for _ in range(10)]
        dead = [q.schedule(5.0, lambda: None) for _ in range(200)]
        for e in dead:
            e.cancel()
        # compaction ran: dead entries stay below the trigger threshold
        # instead of accumulating all 200, and the books balance
        assert len(q) == len(live)
        assert q.n_cancelled < 64
        assert len(q._heap) == len(live) + q.n_cancelled

    def test_compaction_preserves_pop_order(self):
        q = EventQueue()
        fired = []
        for i in range(50):
            q.schedule(float(i % 7), lambda i=i: fired.append(i))
        doomed = [q.schedule(0.5, lambda: fired.append(-1)) for _ in range(300)]
        for e in doomed:
            e.cancel()
        q.run()
        assert -1 not in fired
        by_time = sorted(range(50), key=lambda i: (i % 7, i))
        assert fired == by_time

    def test_next_event_time_skips_dead_events(self):
        q = EventQueue()
        e = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        e.cancel()
        assert q.next_event_time() == 2.0

    def test_peak_heap_high_water_mark(self):
        q = EventQueue()
        for _ in range(7):
            q.schedule(1.0, lambda: None)
        q.run()
        q.schedule(1.0, lambda: None)
        assert q.peak_heap == 7


class TestScheduleMany:
    def test_matches_sequential_schedule_order(self):
        """Batched insert fires in exactly the order k single schedules do."""
        delays = [3.0, 1.0, 2.0, 1.0, 0.0, 2.0, 1.0, 3.0, 0.5, 1.5]
        fired_a, fired_b = [], []
        qa = EventQueue()
        for k, d in enumerate(delays):
            qa.schedule(d, lambda k=k: fired_a.append(k))
        qa.run()
        qb = EventQueue()
        qb.schedule_many(
            [(d, lambda k=k: fired_b.append(k)) for k, d in enumerate(delays)]
        )
        qb.run()
        assert fired_a == fired_b

    def test_interleaves_with_single_schedules(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append("single-early"))
        q.schedule_many(
            [(1.0, lambda: fired.append("batch-0")),
             (0.5, lambda: fired.append("batch-1"))]
        )
        q.schedule(1.0, lambda: fired.append("single-late"))
        q.run()
        assert fired == ["batch-1", "single-early", "batch-0", "single-late"]

    def test_small_batch_uses_push_path(self):
        q = EventQueue()
        for _ in range(40):
            q.schedule(5.0, lambda: None)
        fired = []
        q.schedule_many([(1.0, lambda: fired.append("x"))])
        q.step()
        assert fired == ["x"]

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule_many([(1.0, lambda: None), (-0.1, lambda: None)])

    def test_returns_events_in_input_order(self):
        q = EventQueue()
        events = q.schedule_many([(2.0, lambda: None), (1.0, lambda: None)])
        assert [e.time for e in events] == [2.0, 1.0]
        events[1].cancel()
        assert len(q) == 1

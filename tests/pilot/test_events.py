"""Tests for the DES event queue."""

import pytest

from repro.pilot.events import EventQueue, SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert EventQueue().now == 0.0

    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(3.0, lambda: fired.append("c"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(2.0, lambda: fired.append("b"))
        q.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_submission_order(self):
        q = EventQueue()
        fired = []
        for name in "abc":
            q.schedule(1.0, lambda n=name: fired.append(n))
        q.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        q = EventQueue()
        q.schedule(5.5, lambda: None)
        q.run()
        assert q.now == 5.5

    def test_callbacks_can_schedule_more(self):
        q = EventQueue()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                q.schedule(1.0, lambda: chain(n + 1))

        q.schedule(1.0, lambda: chain(1))
        q.run()
        assert fired == [1, 2, 3]
        assert q.now == 3.0

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        q = EventQueue()
        q.schedule(10.0, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule_at(5.0, lambda: None)


class TestCancel:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        fired = []
        e = q.schedule(1.0, lambda: fired.append("x"))
        e.cancel()
        q.run()
        assert fired == []

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        e1 = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        e1.cancel()
        assert len(q) == 1


class TestRunUntil:
    def test_stops_at_predicate(self):
        q = EventQueue()
        state = {"n": 0}
        for _ in range(10):
            q.schedule(1.0, lambda: state.__setitem__("n", state["n"] + 1))
        q.run_until(lambda: state["n"] >= 3)
        assert state["n"] == 3

    def test_deadlock_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError, match="deadlock"):
            q.run_until(lambda: False)

    def test_immediately_true_predicate_runs_nothing(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.run_until(lambda: True)
        assert fired == []


class TestAdvanceTo:
    def test_advance_idle_time(self):
        q = EventQueue()
        q.advance_to(42.0)
        assert q.now == 42.0

    def test_cannot_rewind(self):
        q = EventQueue()
        q.advance_to(10.0)
        with pytest.raises(SimulationError):
            q.advance_to(5.0)

    def test_cannot_skip_pending_events(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            q.advance_to(2.0)

    def test_can_advance_past_cancelled(self):
        q = EventQueue()
        e = q.schedule(1.0, lambda: None)
        e.cancel()
        q.advance_to(2.0)
        assert q.now == 2.0


class TestCounters:
    def test_n_fired(self):
        q = EventQueue()
        for _ in range(4):
            q.schedule(1.0, lambda: None)
        q.run()
        assert q.n_fired == 4

    def test_max_events_limit(self):
        q = EventQueue()
        for _ in range(10):
            q.schedule(1.0, lambda: None)
        q.run(max_events=3)
        assert q.n_fired == 3

"""Gray-failure watchdog: deadlines, stragglers, speculation, backoff.

Covers the supervision stack at the pilot level — the
:class:`~repro.pilot.watchdog.Watchdog` driving an
:class:`~repro.pilot.scheduler.AgentScheduler` directly on a virtual
clock, plus the :class:`~repro.core.fault.WatchdogRetryPolicy` backoff
arithmetic and the fault domain's gray-injection primitives.
"""

import numpy as np
import pytest

from repro.core.config import WatchdogSpec
from repro.core.fault import WatchdogRetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.pilot.cluster import ClusterSpec, FilesystemModel, LaunchOverheadModel
from repro.pilot.events import EventQueue
from repro.pilot.faultdomain import FaultDomainModel
from repro.pilot.scheduler import AgentScheduler
from repro.pilot.unit import ComputeUnit, UnitDescription, UnitState
from repro.pilot.watchdog import Watchdog


class ScriptedRNG:
    """Returns pre-scripted uniform draws (for exact hang control)."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0) if self.values else 1.0


def make_cluster():
    return ClusterSpec(
        name="test",
        nodes=8,
        cores_per_node=4,
        launcher=LaunchOverheadModel(base_s=0.1, per_concurrent_s=0.0),
        filesystem=FilesystemModel(
            latency_s=0.01, bandwidth_mb_s=100.0, contention=0.0,
            metadata_op_s=0.0,
        ),
    )


def make_stack(spec, capacity=8, fault_domain=None):
    clock = EventQueue()
    registry = MetricsRegistry()
    watchdog = Watchdog(
        spec, clock, fault_domain=fault_domain, registry=registry
    )
    sched = AgentScheduler(
        clock=clock,
        cluster=make_cluster(),
        capacity=capacity,
        fault_domain=fault_domain,
        watchdog=watchdog,
        registry=registry,
    )
    return sched, clock, watchdog, registry


def submit(sched, n, cores=1, duration=10.0):
    units = []
    for i in range(n):
        u = ComputeUnit(
            UnitDescription(name=f"u{i}", cores=cores, duration=duration)
        )
        sched.submit(u)
        units.append(u)
    return units


def counters(registry):
    return registry.snapshot()["counters"]


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = WatchdogRetryPolicy(
            max_retries=5, backoff_base_s=4.0, backoff_cap_s=20.0, jitter=0.0
        )
        assert policy.backoff(1) == 4.0
        assert policy.backoff(2) == 8.0
        assert policy.backoff(3) == 16.0
        assert policy.backoff(4) == 20.0  # capped, not 32

    def test_jitter_bounded(self):
        policy = WatchdogRetryPolicy(
            backoff_base_s=10.0, backoff_cap_s=1000.0, jitter=0.5,
            rng=np.random.default_rng(7),
        )
        for attempt in (1, 2, 3):
            nominal = 10.0 * 2 ** (attempt - 1)
            for _ in range(20):
                delay = policy.backoff(attempt)
                assert nominal <= delay <= nominal * 1.5

    def test_should_relaunch_boundary(self):
        policy = WatchdogRetryPolicy(max_retries=2)
        assert policy.should_relaunch(1)
        assert policy.should_relaunch(2)
        assert not policy.should_relaunch(3)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            WatchdogRetryPolicy().backoff(0)

    def test_from_spec(self):
        spec = WatchdogSpec(
            enabled=True, max_retries=7, backoff_base_s=2.0,
            backoff_cap_s=64.0, backoff_jitter=0.0,
        )
        policy = WatchdogRetryPolicy.from_spec(spec)
        assert policy.max_retries == 7
        assert policy.backoff(6) == 64.0


class TestGrayInjectionPrimitives:
    def test_dilation_is_max_over_nodes(self):
        fd = FaultDomainModel(slow_nodes=[(0, 2.0)])
        fd.node_dilation = {0: 2.0, 2: 5.0}
        assert fd.dilation_for([0, 1]) == 2.0
        assert fd.dilation_for([0, 2]) == 5.0
        assert fd.dilation_for([1, 3]) == 1.0

    def test_disabled_hangs_consume_no_rng(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        fd = FaultDomainModel(slow_nodes=[(0, 2.0)], hang_rng=rng)
        assert not fd.draw_hang()
        assert rng.bit_generator.state == before

    def test_explicit_slow_nodes_max_merge(self):
        fd = FaultDomainModel(slow_nodes=[(0, 2.0), (0, 3.0)])
        fd._resolve_slow_nodes(2, EventQueue())
        assert fd.node_dilation == {0: 3.0}
        assert [e.kind for e in fd.events] == ["slowdown"]


class TestSlowNodeDilation:
    def test_execution_time_dilated_by_placement(self):
        fd = FaultDomainModel(slow_nodes=[(0, 3.0)])
        fd.node_dilation = {0: 3.0}
        spec = WatchdogSpec(enabled=True, deadline_factor=10.0)
        sched, clock, _, _ = make_stack(spec, capacity=4, fault_domain=fd)
        (unit,) = submit(sched, 1, duration=10.0)
        clock.run_until(lambda: unit.done)
        assert unit.state is UnitState.DONE
        # 0.1s launch + 3 x 10s dilated execution
        assert clock.now == pytest.approx(30.1)


class TestDeadlineRecovery:
    def test_single_hang_killed_and_relaunched(self):
        fd = FaultDomainModel(
            hang_probability=0.5, hang_rng=ScriptedRNG([0.1, 0.9])
        )
        spec = WatchdogSpec(
            enabled=True, deadline_factor=3.0, backoff_base_s=5.0,
            backoff_jitter=0.0,
        )
        sched, clock, _, registry = make_stack(spec, capacity=4, fault_domain=fd)
        (unit,) = submit(sched, 1, duration=10.0)
        clock.run_until(lambda: unit.done)
        assert unit.state is UnitState.DONE
        snap = counters(registry)
        assert snap["watchdog.deadline_kills"] == 1
        assert snap["watchdog.relaunches"] == 1
        assert snap["watchdog.escalations"] == 0
        # launch + 30s deadline + 5s backoff + clean 10s attempt
        assert clock.now == pytest.approx(0.1 + 30.0 + 5.0 + 10.0)
        kinds = [e.kind for e in fd.events]
        assert kinds == ["hang", "watchdog_kill", "watchdog_relaunch"]

    def test_persistent_hang_escalates_to_failure(self):
        fd = FaultDomainModel(hang_probability=1.0, hang_rng=ScriptedRNG([0.0] * 10))
        spec = WatchdogSpec(
            enabled=True, max_retries=2, backoff_jitter=0.0
        )
        sched, clock, _, registry = make_stack(spec, capacity=4, fault_domain=fd)
        (unit,) = submit(sched, 1, duration=10.0)
        clock.run_until(lambda: unit.done)
        assert unit.state is UnitState.FAILED
        assert "watchdog" in str(unit.exception)
        snap = counters(registry)
        assert snap["watchdog.deadline_kills"] == 3  # attempts 1..max+1
        assert snap["watchdog.relaunches"] == 2
        assert snap["watchdog.escalations"] == 1

    def test_watchdog_idle_on_healthy_units(self):
        spec = WatchdogSpec(enabled=True, check_interval_s=2.0)
        sched, clock, watchdog, registry = make_stack(spec, capacity=8)
        units = submit(sched, 8, duration=10.0)
        clock.run_until(lambda: all(u.done for u in units))
        snap = counters(registry)
        assert snap["watchdog.deadline_kills"] == 0
        assert snap["watchdog.stragglers"] == 0
        assert watchdog.n_watched == 0


class TestSpeculativeExecution:
    def _slow_node_stack(self, *, speculative):
        fd = FaultDomainModel(slow_nodes=[(0, 4.0)])
        fd.node_dilation = {0: 4.0}
        spec = WatchdogSpec(
            enabled=True,
            deadline_factor=10.0,  # speculation resolves first
            check_interval_s=5.0,
            straggler_factor=2.0,
            min_cohort=3,
            speculative=speculative,
            backoff_jitter=0.0,
        )
        # 8 cores = 2 nodes: node 0's four units are 4x slow, node 1's
        # four finish on time and seed the cohort median
        return make_stack(spec, capacity=8, fault_domain=fd)

    def test_speculative_duplicate_wins_exactly_once(self):
        sched, clock, _, registry = self._slow_node_stack(speculative=True)
        units = submit(sched, 8, duration=10.0)
        clock.run_until(lambda: all(u.done for u in units))
        snap = counters(registry)
        assert snap["scheduler.completed"] == 8
        assert snap["watchdog.stragglers"] == 4
        assert snap["watchdog.speculative_launches"] == 4
        assert (
            snap["watchdog.speculative_wins"]
            + snap["watchdog.speculative_losses"]
            == 4
        )
        # duplicates ran on the fast node, so the run beats the 40s the
        # slow originals would have needed
        assert clock.now < 40.0
        assert sched.free_cores == 8  # every shadow's cores were freed

    def test_stragglers_flagged_but_not_duplicated_without_speculation(self):
        sched, clock, _, registry = self._slow_node_stack(speculative=False)
        units = submit(sched, 8, duration=10.0)
        clock.run_until(lambda: all(u.done for u in units))
        snap = counters(registry)
        assert snap["scheduler.completed"] == 8
        assert snap["watchdog.stragglers"] == 4
        assert snap["watchdog.speculative_launches"] == 0
        # the slow originals had to finish on their own: 4x10s + launch
        assert clock.now > 40.0

"""Tests for compute units and their state machine."""

import pytest

from repro.pilot.unit import (
    ComputeUnit,
    FINAL_STATES,
    UnitDescription,
    UnitState,
    UnitStateError,
)


def make_unit(**kwargs):
    defaults = dict(name="t", cores=1, duration=1.0)
    defaults.update(kwargs)
    return ComputeUnit(UnitDescription(**defaults))


class TestUnitDescription:
    def test_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            UnitDescription(name="t", cores=0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            UnitDescription(name="t", duration=-1.0)

    def test_metadata_defaults_empty(self):
        assert UnitDescription(name="t").metadata == {}


class TestStateMachine:
    def test_initial_state_new(self):
        assert make_unit().state is UnitState.NEW

    def test_happy_path(self):
        u = make_unit()
        path = [
            UnitState.SCHEDULING,
            UnitState.STAGING_INPUT,
            UnitState.AGENT_EXECUTING_PENDING,
            UnitState.EXECUTING,
            UnitState.STAGING_OUTPUT,
            UnitState.DONE,
        ]
        for t, state in enumerate(path):
            u.advance(state, float(t))
        assert u.succeeded
        assert u.done

    def test_illegal_transition_raises(self):
        u = make_unit()
        with pytest.raises(UnitStateError):
            u.advance(UnitState.EXECUTING, 0.0)

    def test_no_transition_from_final(self):
        u = make_unit()
        u.advance(UnitState.CANCELED, 0.0)
        with pytest.raises(UnitStateError):
            u.advance(UnitState.SCHEDULING, 1.0)

    def test_fail_from_executing(self):
        u = make_unit()
        u.advance(UnitState.SCHEDULING, 0.0)
        u.advance(UnitState.STAGING_INPUT, 1.0)
        u.advance(UnitState.AGENT_EXECUTING_PENDING, 2.0)
        u.advance(UnitState.EXECUTING, 3.0)
        u.advance(UnitState.FAILED, 4.0)
        assert u.done and not u.succeeded

    def test_unique_uids(self):
        assert make_unit().uid != make_unit().uid


class TestTimestampsAndSpans:
    def _run(self):
        u = make_unit()
        u.advance(UnitState.SCHEDULING, 0.0)
        u.advance(UnitState.STAGING_INPUT, 1.0)
        u.advance(UnitState.AGENT_EXECUTING_PENDING, 3.0)
        u.advance(UnitState.EXECUTING, 4.0)
        u.advance(UnitState.STAGING_OUTPUT, 14.0)
        u.advance(UnitState.DONE, 15.5)
        return u

    def test_staging_times(self):
        u = self._run()
        assert u.staging_in_time == pytest.approx(2.0)
        assert u.staging_out_time == pytest.approx(1.5)
        assert u.data_time == pytest.approx(3.5)

    def test_launch_overhead(self):
        u = self._run()
        # SCHEDULING->STAGING (1.0) + PENDING->EXECUTING (1.0)
        assert u.launch_overhead == pytest.approx(2.0)

    def test_execution_time(self):
        u = self._run()
        assert u.execution_time == pytest.approx(10.0)

    def test_start_end(self):
        u = self._run()
        assert u.start_time == 4.0
        assert u.end_time == 15.5

    def test_incomplete_spans_zero(self):
        u = make_unit()
        assert u.execution_time == 0.0
        assert u.data_time == 0.0
        assert u.end_time is None


class TestCallbacks:
    def test_callback_invoked_per_transition(self):
        u = make_unit()
        seen = []
        u.register_callback(lambda unit, s: seen.append(s))
        u.advance(UnitState.SCHEDULING, 0.0)
        u.advance(UnitState.CANCELED, 1.0)
        assert seen == [UnitState.SCHEDULING, UnitState.CANCELED]

    def test_final_states_set(self):
        assert UnitState.DONE in FINAL_STATES
        assert UnitState.FAILED in FINAL_STATES
        assert UnitState.CANCELED in FINAL_STATES
        assert UnitState.EXECUTING not in FINAL_STATES

"""Tests for the agent scheduler (core allocation + unit pipeline)."""

import pytest

from repro.pilot.cluster import ClusterSpec, FilesystemModel, LaunchOverheadModel
from repro.pilot.events import EventQueue
from repro.pilot.failures import FailureModel
from repro.pilot.scheduler import AgentScheduler, SchedulerError
from repro.pilot.staging import StagingAction, StagingDirective
from repro.pilot.unit import ComputeUnit, UnitDescription, UnitState

import numpy as np


def make_cluster(**kwargs):
    defaults = dict(
        name="test",
        nodes=8,
        cores_per_node=8,
        launcher=LaunchOverheadModel(base_s=0.1, per_concurrent_s=0.0),
        filesystem=FilesystemModel(
            latency_s=0.01, bandwidth_mb_s=100.0, contention=0.0,
            metadata_op_s=0.0,
        ),
    )
    defaults.update(kwargs)
    return ClusterSpec(**defaults)


def make_scheduler(capacity=8, clock=None, cluster=None, failure_model=None):
    clock = clock or EventQueue()
    return (
        AgentScheduler(
            clock=clock,
            cluster=cluster or make_cluster(),
            capacity=capacity,
            failure_model=failure_model,
        ),
        clock,
    )


def submit(sched, n, cores=1, duration=10.0, **desc_kwargs):
    units = []
    for i in range(n):
        u = ComputeUnit(
            UnitDescription(
                name=f"u{i}", cores=cores, duration=duration, **desc_kwargs
            )
        )
        sched.submit(u)
        units.append(u)
    return units


class TestBasicExecution:
    def test_single_unit_completes(self):
        sched, clock = make_scheduler()
        (u,) = submit(sched, 1)
        clock.run()
        assert u.succeeded
        assert u.execution_time == pytest.approx(10.0)

    def test_concurrent_when_cores_allow(self):
        sched, clock = make_scheduler(capacity=4)
        units = submit(sched, 4, duration=10.0)
        clock.run()
        starts = {u.start_time for u in units}
        assert len(starts) == 1  # identical launch overhead => same start

    def test_waves_when_oversubscribed(self):
        sched, clock = make_scheduler(capacity=2)
        units = submit(sched, 4, duration=10.0)
        clock.run()
        assert all(u.succeeded for u in units)
        starts = sorted(u.start_time for u in units)
        assert starts[2] > starts[0] + 9.0  # second wave after first

    def test_work_result_stored(self):
        sched, clock = make_scheduler()
        u = ComputeUnit(
            UnitDescription(name="w", duration=1.0, work=lambda: 42)
        )
        sched.submit(u)
        clock.run()
        assert u.result == 42

    def test_raising_work_fails_unit(self):
        sched, clock = make_scheduler()

        def boom():
            raise RuntimeError("kaput")

        u = ComputeUnit(UnitDescription(name="b", duration=1.0, work=boom))
        sched.submit(u)
        clock.run()
        assert u.state is UnitState.FAILED
        assert "kaput" in str(u.exception)

    def test_cores_released_after_failure(self):
        sched, clock = make_scheduler(capacity=1)

        def boom():
            raise RuntimeError("x")

        u1 = ComputeUnit(UnitDescription(name="f", duration=1.0, work=boom))
        u2 = ComputeUnit(UnitDescription(name="ok", duration=1.0))
        sched.submit(u1)
        sched.submit(u2)
        clock.run()
        assert u2.succeeded


class TestBackfill:
    def test_small_unit_fills_hole(self):
        sched, clock = make_scheduler(capacity=4)
        big = ComputeUnit(UnitDescription(name="big", cores=3, duration=100.0))
        big2 = ComputeUnit(UnitDescription(name="big2", cores=3, duration=10.0))
        small = ComputeUnit(UnitDescription(name="small", cores=1, duration=1.0))
        sched.submit(big)
        sched.submit(big2)  # doesn't fit alongside big
        sched.submit(small)  # fits in the 1 free core
        clock.run()
        assert small.end_time < big.end_time


class TestValidation:
    def test_oversized_unit_rejected(self):
        sched, _ = make_scheduler(capacity=4)
        u = ComputeUnit(UnitDescription(name="huge", cores=8))
        with pytest.raises(SchedulerError, match="only has"):
            sched.submit(u)

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            AgentScheduler(EventQueue(), make_cluster(), capacity=0)

    def test_cancel_all(self):
        sched, clock = make_scheduler(capacity=1)
        units = submit(sched, 3, duration=5.0)
        sched.cancel_all()
        clock.run()
        # first one already staged/running; the queued ones are cancelled
        assert units[1].state is UnitState.CANCELED
        assert units[2].state is UnitState.CANCELED

    def test_submit_after_drain_rejected(self):
        sched, _ = make_scheduler()
        sched.cancel_all()
        with pytest.raises(SchedulerError):
            sched.submit(ComputeUnit(UnitDescription(name="late")))


class TestStagingPipeline:
    def test_staging_charged(self):
        sched, clock = make_scheduler()
        d_in = StagingDirective("a", "b", 100.0)  # 1 s at 100 MB/s
        u = ComputeUnit(
            UnitDescription(name="s", duration=1.0, input_staging=[d_in])
        )
        sched.submit(u)
        clock.run()
        assert u.staging_in_time == pytest.approx(1.01, abs=0.01)

    def test_output_lands_in_staging_area(self):
        sched, clock = make_scheduler()
        d_out = StagingDirective("x", "staging:///out", 1.0)
        u = ComputeUnit(
            UnitDescription(name="s", duration=1.0, output_staging=[d_out])
        )
        sched.submit(u)
        clock.run()
        assert "staging:///out" in sched.staging_area

    def test_link_faster_than_copy(self):
        sched, clock = make_scheduler()
        u_link = ComputeUnit(
            UnitDescription(
                name="l",
                duration=0.0,
                input_staging=[
                    StagingDirective("a", "b", 100.0, StagingAction.LINK)
                ],
            )
        )
        u_copy = ComputeUnit(
            UnitDescription(
                name="c",
                duration=0.0,
                input_staging=[StagingDirective("a", "c", 100.0)],
            )
        )
        sched.submit(u_link)
        sched.submit(u_copy)
        clock.run()
        assert u_link.staging_in_time < u_copy.staging_in_time


class TestLaunchOverheadAccounting:
    def test_launch_stagger_grows_with_burst_size(self):
        cluster = make_cluster(
            launcher=LaunchOverheadModel(base_s=0.0, per_concurrent_s=0.1)
        )
        sched, clock = make_scheduler(capacity=64, cluster=cluster)
        units = submit(sched, 32, duration=1.0)
        clock.run()
        overheads = [u.launch_overhead for u in units]
        assert max(overheads) > min(overheads)
        assert max(overheads) >= 0.1 * 16  # later launches see contention


class TestFailureInjection:
    def test_injected_failures(self):
        fm = FailureModel(probability=1.0, rng=np.random.default_rng(0))
        sched, clock = make_scheduler(failure_model=fm)
        units = submit(sched, 3, duration=10.0)
        clock.run()
        assert all(u.state is UnitState.FAILED for u in units)

    def test_failure_before_duration_elapses(self):
        fm = FailureModel(probability=1.0, rng=np.random.default_rng(0))
        sched, clock = make_scheduler(failure_model=fm)
        (u,) = submit(sched, 1, duration=10.0)
        clock.run()
        fail_t = u.timestamps[UnitState.FAILED]
        assert fail_t - u.start_time < 10.0

    def test_phase_filter(self):
        fm = FailureModel(
            probability=1.0,
            rng=np.random.default_rng(0),
            only_phase="md",
        )
        sched, clock = make_scheduler(failure_model=fm)
        safe = ComputeUnit(
            UnitDescription(
                name="ex", duration=1.0, metadata={"phase": "exchange"}
            )
        )
        doomed = ComputeUnit(
            UnitDescription(name="md", duration=1.0, metadata={"phase": "md"})
        )
        sched.submit(safe)
        sched.submit(doomed)
        clock.run()
        assert safe.succeeded
        assert doomed.state is UnitState.FAILED

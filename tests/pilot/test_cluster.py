"""Tests for the simulated cluster models."""

import pytest

from repro.pilot.cluster import (
    ClusterSpec,
    FilesystemModel,
    LaunchOverheadModel,
    QueueModel,
    get_cluster,
    small_cluster,
    stampede,
    supermic,
)


class TestFilesystemModel:
    def test_transfer_time_grows_with_size(self):
        fs = FilesystemModel()
        assert fs.transfer_time(100.0) > fs.transfer_time(1.0)

    def test_contention_slows_transfers(self):
        fs = FilesystemModel(contention=0.5)
        assert fs.transfer_time(10.0, concurrent=100) > fs.transfer_time(
            10.0, concurrent=0
        )

    def test_zero_contention_ignores_concurrency(self):
        fs = FilesystemModel(contention=0.0, metadata_contention=0.0)
        assert fs.transfer_time(10.0, concurrent=100) == pytest.approx(
            fs.transfer_time(10.0, concurrent=0)
        )

    def test_metadata_contention_slows_small_files(self):
        fs = FilesystemModel(metadata_contention=0.01)
        assert fs.transfer_time(0.001, concurrent=1000) > 2 * fs.transfer_time(
            0.001, concurrent=0
        )

    def test_zero_size_costs_latency_only(self):
        fs = FilesystemModel(latency_s=0.1, metadata_op_s=0.0)
        assert fs.transfer_time(0.0) == pytest.approx(0.1)

    def test_link_cheaper_than_copy(self):
        fs = FilesystemModel()
        assert fs.link_time() < fs.transfer_time(1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FilesystemModel().transfer_time(-1.0)


class TestQueueModel:
    def test_wait_grows_with_cores(self):
        q = QueueModel()
        assert q.wait_time(10000) > q.wait_time(10)

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError):
            QueueModel().wait_time(0)


class TestLaunchOverheadModel:
    def test_grows_with_concurrency(self):
        m = LaunchOverheadModel()
        assert m.launch_delay(1000) > m.launch_delay(0)

    def test_proportional_to_concurrency(self):
        # "RP overhead is proportional to the number of replicas" (Sec 4.1)
        m = LaunchOverheadModel(base_s=0.0, per_concurrent_s=0.01)
        assert m.launch_delay(200) == pytest.approx(2 * m.launch_delay(100))

    def test_mpi_extra_for_multicore(self):
        m = LaunchOverheadModel()
        assert m.launch_delay(0, cores=16) > m.launch_delay(0, cores=1)

    def test_rejects_negative_concurrency(self):
        with pytest.raises(ValueError):
            LaunchOverheadModel().launch_delay(-1)


class TestClusterSpec:
    def test_total_cores(self):
        c = ClusterSpec(name="x", nodes=10, cores_per_node=16)
        assert c.total_cores == 160

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ClusterSpec(name="x", nodes=0, cores_per_node=16)
        with pytest.raises(ValueError):
            ClusterSpec(name="x", nodes=4, cores_per_node=0)

    def test_presets(self):
        assert stampede().name == "stampede"
        assert supermic().name == "supermic"
        assert supermic().total_cores == 380 * 20

    def test_stampede_slower_per_core(self):
        # calibrated from the paper's 139.6 s vs ~165 s MD times
        assert stampede().speed_factor > supermic().speed_factor

    def test_small_cluster_fits_request(self):
        c = small_cluster(cores=100, cores_per_node=16)
        assert c.total_cores >= 100

    def test_get_cluster_lookup(self):
        assert get_cluster("stampede").name == "stampede"

    def test_get_cluster_unknown(self):
        with pytest.raises(KeyError, match="unknown cluster"):
            get_cluster("does-not-exist")

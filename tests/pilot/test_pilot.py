"""Tests for pilot lifecycle."""

import pytest

from repro.pilot.cluster import ClusterSpec, QueueModel
from repro.pilot.events import EventQueue
from repro.pilot.pilot import Pilot, PilotDescription, PilotState
from repro.pilot.scheduler import SchedulerError
from repro.pilot.unit import UnitDescription, UnitState


def make_pilot(clock=None, cores=8, walltime_minutes=60.0, queue_wait=10.0):
    clock = clock or EventQueue()
    cluster = ClusterSpec(
        name="t",
        nodes=4,
        cores_per_node=4,
        queue=QueueModel(base_wait_s=queue_wait, per_core_s=0.0),
    )
    desc = PilotDescription(
        resource=cluster, cores=cores, walltime_minutes=walltime_minutes
    )
    return Pilot(desc, clock), clock


class TestDescription:
    def test_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            PilotDescription(resource="supermic", cores=0)

    def test_rejects_bad_walltime(self):
        with pytest.raises(ValueError):
            PilotDescription(resource="supermic", cores=4, walltime_minutes=0)

    def test_resolves_named_resource(self):
        d = PilotDescription(resource="supermic", cores=4)
        assert d.cluster().name == "supermic"

    def test_oversized_request_rejected(self):
        cluster = ClusterSpec(name="tiny", nodes=1, cores_per_node=2)
        with pytest.raises(ValueError, match="only has"):
            Pilot(
                PilotDescription(resource=cluster, cores=100),
                EventQueue(),
            )


class TestLifecycle:
    def test_queue_wait_before_active(self):
        pilot, clock = make_pilot(queue_wait=30.0)
        pilot.launch()
        assert pilot.state is PilotState.PENDING
        clock.run_until(lambda: pilot.state is PilotState.ACTIVE)
        assert pilot.timestamps[PilotState.ACTIVE] == pytest.approx(30.0)

    def test_double_launch_rejected(self):
        pilot, clock = make_pilot()
        pilot.launch()
        with pytest.raises(RuntimeError):
            pilot.launch()

    def test_cancel(self):
        pilot, clock = make_pilot()
        pilot.launch()
        clock.run_until(lambda: pilot.state is PilotState.ACTIVE)
        pilot.cancel()
        assert pilot.state is PilotState.CANCELED

    def test_cancel_idempotent(self):
        pilot, clock = make_pilot()
        pilot.launch()
        clock.run_until(lambda: pilot.state is PilotState.ACTIVE)
        pilot.cancel()
        pilot.cancel()
        assert pilot.state is PilotState.CANCELED

    def test_callbacks(self):
        pilot, clock = make_pilot()
        seen = []
        pilot.register_callback(lambda p, s: seen.append(s))
        pilot.launch()
        clock.run_until(lambda: pilot.state is PilotState.ACTIVE)
        assert seen == [PilotState.PENDING, PilotState.ACTIVE]


class TestWorkload:
    def test_units_before_activation_run_after(self):
        pilot, clock = make_pilot(queue_wait=10.0)
        pilot.launch()
        units = pilot.submit_units(
            [UnitDescription(name="early", duration=5.0)]
        )
        clock.run_until(lambda: units[0].done)
        assert units[0].succeeded
        assert units[0].start_time >= 10.0

    def test_units_after_activation(self):
        pilot, clock = make_pilot()
        pilot.launch()
        clock.run_until(lambda: pilot.state is PilotState.ACTIVE)
        units = pilot.submit_units([UnitDescription(name="late", duration=5.0)])
        clock.run_until(lambda: units[0].done)
        assert units[0].succeeded

    def test_submit_to_final_pilot_rejected(self):
        pilot, clock = make_pilot()
        pilot.launch()
        clock.run_until(lambda: pilot.state is PilotState.ACTIVE)
        pilot.cancel()
        with pytest.raises(SchedulerError):
            pilot.submit_units([UnitDescription(name="x")])

    def test_walltime_expiry_cancels_queue(self):
        pilot, clock = make_pilot(cores=1, walltime_minutes=1.0, queue_wait=0.0)
        pilot.launch()
        # unit "a" is still running at the 60 s walltime (it gets a grace
        # period to finish); queued unit "b" is cancelled at expiry.
        units = pilot.submit_units(
            [
                UnitDescription(name="a", duration=70.0),
                UnitDescription(name="b", duration=70.0),
            ]
        )
        clock.run()
        assert pilot.state is PilotState.DONE
        assert units[0].succeeded
        assert units[1].state is UnitState.CANCELED

"""Edge cases of the batched event-queue primitives.

``step_batch`` (equal-time sweep), ``schedule_many`` (amortized bulk
insert) and ``account_batch`` (externally simulated batch credit) are the
three primitives the SoA phase engine leans on; these tests pin their
behavior where the reference loop's lazy-cancellation and compaction
machinery interacts with batching.
"""

from __future__ import annotations

import pytest

from repro.pilot.events import EventQueue, SimulationError


class TestStepBatchCancellation:
    def test_pre_cancelled_events_inside_equal_time_batch_are_skipped(self):
        q = EventQueue()
        fired = []
        events = [
            q.schedule(1.0, lambda i=i: fired.append(i)) for i in range(6)
        ]
        events[1].cancel()
        events[4].cancel()
        t, n = q.step_batch()
        assert (t, n) == (1.0, 4)
        assert fired == [0, 2, 3, 5]
        assert q.n_cancelled == 0  # dead accounting settled exactly
        assert len(q) == 0

    def test_callback_cancelling_a_later_equal_time_event(self):
        """Lazy cancellation *during* the batch: a fired event cancels a
        sibling at the same timestamp before the sweep reaches it."""
        q = EventQueue()
        fired = []
        victim = {}

        def assassin():
            fired.append("assassin")
            victim["event"].cancel()

        q.schedule(2.0, assassin)
        victim["event"] = q.schedule(2.0, lambda: fired.append("victim"))
        q.schedule(2.0, lambda: fired.append("bystander"))
        t, n = q.step_batch()
        assert (t, n) == (2.0, 2)
        assert fired == ["assassin", "bystander"]
        assert q.n_cancelled == 0

    def test_callback_scheduling_at_the_same_time_joins_the_batch(self):
        q = EventQueue()
        fired = []

        def spawner():
            fired.append("parent")
            q.schedule(0.0, lambda: fired.append("child"))

        q.schedule(1.5, spawner)
        t, n = q.step_batch()
        assert (t, n) == (1.5, 2)
        assert fired == ["parent", "child"]

    def test_batch_of_only_cancelled_events_is_empty(self):
        q = EventQueue()
        doomed = [q.schedule(1.0, lambda: None) for _ in range(3)]
        survivor_fired = []
        q.schedule(2.0, lambda: survivor_fired.append(True))
        for event in doomed:
            event.cancel()
        # the sweep must skip straight past the dead 1.0 cohort
        t, n = q.step_batch()
        assert (t, n) == (2.0, 1)
        assert survivor_fired == [True]

    def test_empty_queue_sweep(self):
        q = EventQueue()
        assert q.step_batch() == (None, 0)
        assert q.now == 0.0
        assert q.n_fired == 0

    def test_sweep_after_everything_cancelled(self):
        q = EventQueue()
        for event in [q.schedule(1.0, lambda: None) for _ in range(4)]:
            event.cancel()
        assert q.step_batch() == (None, 0)
        assert len(q._heap) == 0  # peek purged the corpses
        assert q.n_cancelled == 0


class TestScheduleManyCompaction:
    def _flood_with_dead(self, q, n=200, t=5.0):
        events = [q.schedule(t, lambda: None) for _ in range(n)]
        for event in events:
            event.cancel()

    def test_bulk_insert_into_freshly_compacted_queue(self):
        """Mass cancellation triggers compaction; a schedule_many right
        after must land in the rebuilt heap with order intact."""
        q = EventQueue()
        self._flood_with_dead(q)
        # compaction ran at least once (the heap no longer holds all 200
        # corpses); a sub-threshold tail of dead entries may remain
        assert len(q._heap) < 200
        assert len(q) == 0
        fired = []
        q.schedule_many(
            [(float(d), lambda d=d: fired.append(d)) for d in (3, 1, 2)]
        )
        q.run()
        assert fired == [1, 2, 3]

    def test_bulk_insert_whose_heapify_folds_dead_entries(self):
        """schedule_many's heapify path rebuilds a heap that still holds
        lazily-cancelled entries below the compaction threshold — the
        dead count must survive the rebuild exactly."""
        q = EventQueue()
        live = []
        dead = [q.schedule(1.0, lambda: None) for _ in range(10)]
        for event in dead:
            event.cancel()
        n_dead = q.n_cancelled
        assert n_dead > 0  # below threshold: no compaction yet
        # a batch large enough (>= half the heap) to take the heapify path
        q.schedule_many(
            [(2.0, lambda i=i: live.append(i)) for i in range(30)]
        )
        assert q.n_cancelled == n_dead
        assert len(q) == 30
        q.run()
        assert live == list(range(30))

    def test_empty_batch_is_a_no_op(self):
        q = EventQueue()
        marker = q.schedule(1.0, lambda: None)
        assert q.schedule_many([]) == []
        assert len(q) == 1
        assert q.peak_heap == 1
        marker.cancel()

    def test_interleaved_batch_and_single_schedules_fire_in_seq_order(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append("s1"))
        q.schedule_many(
            [(1.0, lambda: fired.append("b1")), (1.0, lambda: fired.append("b2"))]
        )
        q.schedule(1.0, lambda: fired.append("s2"))
        t, n = q.step_batch()
        assert (t, n) == (1.0, 4)
        assert fired == ["s1", "b1", "b2", "s2"]


class TestAccountBatch:
    def test_credits_counters_and_clock(self):
        q = EventQueue()
        q.account_batch(100, 42.0, peak=17)
        assert q.n_fired == 100
        assert q.now == 42.0
        assert q.peak_heap == 17

    def test_zero_event_batch_moves_nothing_backwards(self):
        q = EventQueue()
        q.account_batch(0, 0.0)
        assert (q.n_fired, q.now) == (0, 0.0)

    def test_peak_is_high_water_not_last_write(self):
        q = EventQueue()
        q.account_batch(1, 1.0, peak=50)
        q.account_batch(1, 2.0, peak=10)
        assert q.peak_heap == 50

    def test_rejects_negative_event_count(self):
        q = EventQueue()
        with pytest.raises(SimulationError, match="n_events"):
            q.account_batch(-1, 1.0)

    def test_rejects_backwards_clock(self):
        q = EventQueue()
        q.account_batch(1, 10.0)
        with pytest.raises(SimulationError, match="backwards"):
            q.account_batch(1, 9.0)

    def test_refuses_to_skip_pending_live_events(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        with pytest.raises(SimulationError, match="skip pending"):
            q.account_batch(10, 6.0)

    def test_pending_cancelled_events_do_not_block(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None).cancel()
        q.account_batch(3, 6.0)  # the only pending event is dead
        assert q.now == 6.0
        assert q.n_fired == 3

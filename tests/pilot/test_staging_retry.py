"""Tests for transient staging faults: retry, backoff, determinism."""

import numpy as np

from repro.obs.metrics import MetricsRegistry, using_registry
from repro.pilot.cluster import ClusterSpec, FilesystemModel, LaunchOverheadModel
from repro.pilot.events import EventQueue
from repro.pilot.faultdomain import FaultDomainModel, TransientFaultModel
from repro.pilot.scheduler import AgentScheduler
from repro.pilot.staging import StagingDirective
from repro.pilot.unit import ComputeUnit, UnitDescription, UnitState


def make_cluster():
    return ClusterSpec(
        name="test",
        nodes=8,
        cores_per_node=4,
        launcher=LaunchOverheadModel(base_s=0.1, per_concurrent_s=0.0),
        filesystem=FilesystemModel(
            latency_s=0.01, bandwidth_mb_s=100.0, contention=0.0,
            metadata_op_s=0.0,
        ),
    )


def run_workload(staging_model, n_units=4, registry=None):
    """Run ``n_units`` units with one input directive each; return the
    (units, finish_time, counters) triple."""
    with using_registry(registry or MetricsRegistry()) as reg:
        clock = EventQueue()
        fd = FaultDomainModel(staging=staging_model)
        sched = AgentScheduler(
            clock=clock, cluster=make_cluster(), capacity=8, fault_domain=fd
        )
        units = []
        for i in range(n_units):
            u = ComputeUnit(
                UnitDescription(
                    name=f"u{i}",
                    cores=1,
                    duration=5.0,
                    input_staging=[
                        StagingDirective(
                            source=f"in{i}.dat", target=f"in{i}.dat",
                            size_mb=1.0,
                        )
                    ],
                )
            )
            sched.submit(u)
            units.append(u)
        clock.run()
        counters = reg.snapshot()["counters"]
    return units, clock.now, counters


def flaky(probability=0.5, seed=42, **kwargs):
    kwargs.setdefault("backoff_base_s", 0.5)
    kwargs.setdefault("max_retries", 10)
    return TransientFaultModel(
        probability=probability, rng=np.random.default_rng(seed), **kwargs
    )


class TestRetry:
    def test_flaky_staging_retried_to_success(self):
        units, _, counters = run_workload(flaky(probability=0.5))
        assert all(u.succeeded for u in units)
        assert counters["fault.staging_transients"] > 0
        # every transient was retried (nothing exhausted its budget)
        assert counters["staging.retries"] == counters["fault.staging_transients"]

    def test_retries_delay_completion(self):
        _, t_clean, _ = run_workload(None)
        _, t_flaky, _ = run_workload(flaky(probability=0.7))
        assert t_flaky > t_clean  # backoff + re-charged transfers cost time

    def test_exhaustion_fails_unit(self):
        model = flaky(probability=1.0, max_retries=2)
        units, _, counters = run_workload(model, n_units=1)
        assert units[0].state is UnitState.FAILED
        assert "staging failed after 3 attempts" in str(units[0].exception)
        # attempts = 1 first try + max_retries retries, all faulted
        assert counters["fault.staging_transients"] == 3
        assert counters["staging.retries"] == 2

    def test_zero_retries_fails_on_first_fault(self):
        model = flaky(probability=1.0, max_retries=0)
        units, _, counters = run_workload(model, n_units=1)
        assert units[0].state is UnitState.FAILED
        assert counters["fault.staging_transients"] == 1
        assert counters["staging.retries"] == 0

    def test_fault_events_recorded_per_attempt(self):
        clock = EventQueue()
        fd = FaultDomainModel(staging=flaky(probability=1.0, max_retries=1))
        sched = AgentScheduler(
            clock=clock, cluster=make_cluster(), capacity=8, fault_domain=fd
        )
        u = ComputeUnit(
            UnitDescription(
                name="u0", cores=1, duration=1.0,
                input_staging=[
                    StagingDirective(source="a", target="a", size_mb=1.0)
                ],
            )
        )
        sched.submit(u)
        clock.run()
        assert [e.kind for e in fd.events] == ["staging_fault"] * 2
        assert [e.detail["attempt"] for e in fd.events] == [1, 2]
        assert all(e.detail["unit"] == "u0" for e in fd.events)


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        a_units, a_t, a_counters = run_workload(flaky(seed=7))
        b_units, b_t, b_counters = run_workload(flaky(seed=7))
        assert a_t == b_t
        assert a_counters == b_counters
        for ua, ub in zip(a_units, b_units):
            assert ua.timestamps == ub.timestamps

    def test_different_seed_different_trajectory(self):
        _, a_t, _ = run_workload(flaky(seed=7, probability=0.6))
        _, b_t, _ = run_workload(flaky(seed=8, probability=0.6))
        assert a_t != b_t  # distinct fault draws land on the clock

    def test_output_staging_also_covered(self):
        # faults strike output staging too: probability 1, tiny budget
        clock = EventQueue()
        fd = FaultDomainModel(staging=flaky(probability=1.0, max_retries=0))
        sched = AgentScheduler(
            clock=clock, cluster=make_cluster(), capacity=8, fault_domain=fd
        )
        u = ComputeUnit(
            UnitDescription(
                name="u0", cores=1, duration=1.0,
                output_staging=[
                    StagingDirective(source="o", target="o", size_mb=1.0)
                ],
            )
        )
        sched.submit(u)
        clock.run()
        # it reached EXECUTING (no input directives), then failed on output
        assert UnitState.EXECUTING in u.timestamps
        assert u.state is UnitState.FAILED

"""Tests for staging directives and the staging area."""

import pytest

from repro.pilot.staging import (
    StagingAction,
    StagingArea,
    StagingDirective,
    total_staging_size,
)


class TestStagingDirective:
    def test_defaults_to_copy(self):
        d = StagingDirective("a", "b", 1.0)
        assert d.action is StagingAction.COPY

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            StagingDirective("a", "b", -1.0)

    def test_rejects_empty_paths(self):
        with pytest.raises(ValueError):
            StagingDirective("", "b", 1.0)
        with pytest.raises(ValueError):
            StagingDirective("a", "", 1.0)


class TestStagingArea:
    def test_put_get_roundtrip(self):
        area = StagingArea()
        area.put("f1", 2.5)
        assert "f1" in area
        assert area.get("f1") == 2.5

    def test_missing_file_raises(self):
        with pytest.raises(KeyError):
            StagingArea().get("nope")

    def test_size_of(self):
        area = StagingArea()
        area.put("f", 0.5)
        assert area.size_of("f") == 0.5

    def test_remove(self):
        area = StagingArea()
        area.put("f", 1.0)
        area.remove("f")
        assert "f" not in area

    def test_accounting(self):
        area = StagingArea()
        area.put("a", 1.0)
        area.put("b", 2.0)
        area.get("a")
        assert area.bytes_in_mb == pytest.approx(3.0)
        assert area.bytes_out_mb == pytest.approx(1.0)
        assert area.n_transfers == 3

    def test_files_sorted(self):
        area = StagingArea()
        area.put("z", 0.0)
        area.put("a", 0.0)
        assert area.files() == ["a", "z"]

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            StagingArea().put("f", -0.1)


class TestTotalStagingSize:
    def test_links_are_free(self):
        directives = [
            StagingDirective("a", "b", 5.0, StagingAction.LINK),
            StagingDirective("c", "d", 2.0, StagingAction.COPY),
            StagingDirective("e", "f", 3.0, StagingAction.MOVE),
        ]
        assert total_staging_size(directives) == pytest.approx(5.0)

    def test_empty(self):
        assert total_staging_size([]) == 0.0

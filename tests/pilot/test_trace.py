"""Tests for the execution tracer."""

import pytest

from repro.pilot import (
    PilotDescription,
    Session,
    UnitDescription,
)
from repro.pilot.trace import Tracer
from repro.pilot.unit import UnitState


def run_traced(n_units=4, cores=2, duration=10.0):
    tracer = Tracer()
    with Session() as s:
        pilot = s.submit_pilot(
            PilotDescription(resource="small-cluster", cores=cores)
        )
        s.wait_pilot(pilot)
        units = s.submit_units(
            pilot,
            [
                UnitDescription(
                    name=f"u{i}",
                    cores=1,
                    duration=duration,
                    metadata={"phase": "md", "rid": i},
                )
                for i in range(n_units)
            ],
        )
        tracer.watch_all(units)
        s.wait_units(units)
    return tracer


class TestTracer:
    def test_records_all_units(self):
        tracer = run_traced(n_units=4)
        assert len(tracer.records) == 4

    def test_transitions_reach_done(self):
        tracer = run_traced(n_units=1)
        (rec,) = tracer.records.values()
        assert rec.final_state == "DONE"
        names = [s for s, _ in rec.transitions]
        assert names[0] == "SCHEDULING"
        assert "EXECUTING" in names

    def test_dwell_times(self):
        tracer = run_traced(n_units=1, duration=10.0)
        (rec,) = tracer.records.values()
        assert rec.dwell(UnitState.EXECUTING) == pytest.approx(10.0)

    def test_watch_idempotent(self):
        tracer = Tracer()
        with Session() as s:
            pilot = s.submit_pilot(
                PilotDescription(resource="small-cluster", cores=1)
            )
            s.wait_pilot(pilot)
            units = s.submit_units(
                pilot, [UnitDescription(name="x", duration=1.0)]
            )
            tracer.watch(units[0])
            tracer.watch(units[0])
            s.wait_units(units)
        (rec,) = tracer.records.values()
        names = [s for s, _ in rec.transitions]
        # each state appears once despite double-watching
        assert len(names) == len(set(names))

    def test_concurrency_profile_respects_capacity(self):
        tracer = run_traced(n_units=6, cores=2, duration=10.0)
        profile = tracer.concurrency_profile()
        assert tracer.peak_concurrency() <= 2
        # ends at zero busy cores
        assert profile[-1][1] == 0

    def test_busy_core_seconds(self):
        tracer = run_traced(n_units=3, cores=4, duration=10.0)
        assert tracer.busy_core_seconds() == pytest.approx(30.0)

    def test_state_totals(self):
        tracer = run_traced(n_units=2, cores=2, duration=5.0)
        totals = tracer.state_totals()
        assert totals["EXECUTING"] == pytest.approx(10.0)
        assert totals.get("AGENT_EXECUTING_PENDING", 0.0) > 0.0

    def test_gantt_rendering(self):
        tracer = run_traced(n_units=4, cores=2, duration=10.0)
        art = tracer.gantt(width=40)
        lines = art.splitlines()
        assert lines[0].startswith("t = ")
        assert len(lines) == 5  # header + 4 units
        assert all("#" in l for l in lines[1:])

    def test_gantt_row_cap(self):
        tracer = run_traced(n_units=6, cores=6, duration=1.0)
        art = tracer.gantt(max_rows=2)
        assert "4 more units" in art

    def test_gantt_empty(self):
        assert Tracer().gantt() == "(no executed units)"

    def test_json_roundtrip(self):
        tracer = run_traced(n_units=2)
        text = tracer.to_json()
        back = Tracer.from_json(text)
        assert set(back.records) == set(tracer.records)
        for uid in tracer.records:
            assert (
                back.records[uid].transitions
                == tracer.records[uid].transitions
            )
        assert back.busy_core_seconds() == pytest.approx(
            tracer.busy_core_seconds()
        )

"""Tests for Session / PilotManager / UnitManager."""

import pytest

from repro.pilot.events import SimulationError
from repro.pilot.pilot import PilotDescription, PilotState
from repro.pilot.session import PilotManager, Session, UnitManager
from repro.pilot.unit import UnitDescription


def small_pilot_desc(cores=4):
    return PilotDescription(resource="small-cluster", cores=cores)


class TestSession:
    def test_submit_and_wait_pilot(self):
        with Session() as s:
            p = s.submit_pilot(small_pilot_desc())
            s.wait_pilot(p)
            assert p.state is PilotState.ACTIVE
            assert s.now > 0

    def test_submit_and_wait_units(self):
        with Session() as s:
            p = s.submit_pilot(small_pilot_desc())
            s.wait_pilot(p)
            units = s.submit_units(
                p, [UnitDescription(name=f"u{i}", duration=2.0) for i in range(8)]
            )
            s.wait_units(units)
            assert all(u.succeeded for u in units)

    def test_run_for_advances_clock(self):
        with Session() as s:
            t0 = s.now
            s.run_for(100.0)
            assert s.now == pytest.approx(t0 + 100.0)

    def test_run_for_fires_due_events(self):
        with Session() as s:
            fired = []
            s.clock.schedule(5.0, lambda: fired.append(1))
            s.run_for(10.0)
            assert fired == [1]
            assert s.now == pytest.approx(10.0)

    def test_closed_session_rejects_work(self):
        s = Session()
        s.close()
        with pytest.raises(SimulationError):
            s.submit_pilot(small_pilot_desc())

    def test_close_cancels_pilots(self):
        s = Session()
        p = s.submit_pilot(small_pilot_desc())
        s.wait_pilot(p)
        s.close()
        assert p.state is PilotState.CANCELED

    def test_round_robin_distribution(self):
        with Session() as s:
            p1 = s.submit_pilot(small_pilot_desc())
            p2 = s.submit_pilot(small_pilot_desc())
            s.wait_pilot(p1)
            s.wait_pilot(p2)
            descs = [UnitDescription(name=f"u{i}", duration=1.0) for i in range(6)]
            units = s.submit_units_round_robin([p1, p2], descs)
            s.wait_units(units)
            assert all(u.succeeded for u in units)

    def test_round_robin_needs_pilots(self):
        with Session() as s:
            with pytest.raises(ValueError):
                s.submit_units_round_robin([], [UnitDescription(name="x")])


class TestManagers:
    def test_pilot_manager_api(self):
        with Session() as s:
            pmgr = PilotManager(s)
            (p,) = pmgr.submit_pilots(small_pilot_desc())
            pmgr.wait_pilots(p)
            assert p.state is PilotState.ACTIVE

    def test_unit_manager_api(self):
        with Session() as s:
            pmgr, umgr = PilotManager(s), UnitManager(s)
            pilots = pmgr.submit_pilots([small_pilot_desc(), small_pilot_desc()])
            pmgr.wait_pilots(pilots)
            umgr.add_pilots(pilots)
            units = umgr.submit_units(
                [UnitDescription(name=f"u{i}", duration=1.0) for i in range(4)]
            )
            umgr.wait_units(units)
            assert all(u.succeeded for u in units)

    def test_unit_manager_requires_pilots(self):
        with Session() as s:
            umgr = UnitManager(s)
            with pytest.raises(RuntimeError):
                umgr.submit_units(UnitDescription(name="x"))

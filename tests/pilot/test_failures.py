"""Tests for the failure injector."""

import numpy as np
import pytest

from repro.pilot.failures import FailureModel, NO_FAILURES


class TestFailureModel:
    def test_zero_probability_never_fails(self):
        fm = FailureModel(probability=0.0)
        for _ in range(100):
            fails, _ = fm.draw({})
            assert not fails

    def test_certain_failure(self):
        fm = FailureModel(probability=1.0, rng=np.random.default_rng(1))
        fails, fraction = fm.draw({})
        assert fails
        assert 0.0 < fraction < 1.0

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            FailureModel(probability=1.5)
        with pytest.raises(ValueError):
            FailureModel(probability=-0.1)

    def test_phase_filter(self):
        fm = FailureModel(
            probability=1.0,
            rng=np.random.default_rng(0),
            only_phase="md",
        )
        assert fm.draw({"phase": "exchange"})[0] is False
        assert fm.draw({"phase": "md"})[0] is True

    def test_empirical_rate(self):
        fm = FailureModel(probability=0.3, rng=np.random.default_rng(7))
        n_fail = sum(fm.draw({})[0] for _ in range(5000))
        assert 0.25 < n_fail / 5000 < 0.35

    def test_no_failures_singleton(self):
        assert NO_FAILURES.draw({"phase": "md"})[0] is False

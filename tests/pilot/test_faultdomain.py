"""Tests for correlated fault injection (node crashes, preemption)."""

import numpy as np
import pytest

from repro.pilot.cluster import ClusterSpec, FilesystemModel, LaunchOverheadModel
from repro.pilot.events import EventQueue
from repro.pilot.faultdomain import (
    FaultDomainModel,
    FaultEvent,
    TransientFaultModel,
)
from repro.pilot.pilot import PilotDescription, PilotState
from repro.pilot.scheduler import AgentScheduler, SchedulerError
from repro.pilot.session import Session
from repro.pilot.unit import ComputeUnit, UnitDescription, UnitState


def make_cluster(**kwargs):
    defaults = dict(
        name="test",
        nodes=8,
        cores_per_node=4,
        launcher=LaunchOverheadModel(base_s=0.1, per_concurrent_s=0.0),
        filesystem=FilesystemModel(
            latency_s=0.01, bandwidth_mb_s=100.0, contention=0.0,
            metadata_op_s=0.0,
        ),
    )
    defaults.update(kwargs)
    return ClusterSpec(**defaults)


def make_scheduler(capacity=8, fault_domain=None):
    clock = EventQueue()
    sched = AgentScheduler(
        clock=clock,
        cluster=make_cluster(),
        capacity=capacity,
        fault_domain=fault_domain,
    )
    return sched, clock


def submit(sched, n, cores=1, duration=10.0):
    units = []
    for i in range(n):
        u = ComputeUnit(
            UnitDescription(name=f"u{i}", cores=cores, duration=duration)
        )
        sched.submit(u)
        units.append(u)
    return units


class TestNodeMap:
    def test_nodes_carved_from_capacity(self):
        sched, _ = make_scheduler(capacity=8)  # 4 cores/node -> 2 nodes
        assert sched.n_nodes == 2
        assert sched.quarantined_nodes == set()
        assert sched.quarantined_cores(0) == 0

    def test_remainder_node(self):
        sched, _ = make_scheduler(capacity=6)  # 4 + 2
        assert sched.n_nodes == 2


class TestCrashNode:
    def test_crash_fails_all_coresident_units_in_one_event(self):
        sched, clock = make_scheduler(capacity=8)
        units = submit(sched, 8, duration=50.0)
        clock.run_until(
            lambda: all(u.state is UnitState.EXECUTING for u in units)
        )
        t_crash = clock.now
        killed = sched.crash_node(0)
        assert killed == 4  # first-fit put units 0-3 on node 0
        failed = [u for u in units if u.state is UnitState.FAILED]
        assert len(failed) == 4
        # all failures share the crash instant (correlated, not serial)
        assert {u.timestamps[UnitState.FAILED] for u in failed} == {t_crash}

    def test_crash_quarantines_cores(self):
        sched, clock = make_scheduler(capacity=8)
        units = submit(sched, 8, duration=50.0)
        clock.run_until(
            lambda: all(u.state is UnitState.EXECUTING for u in units)
        )
        sched.crash_node(0)
        assert sched.capacity == 4
        assert sched.quarantined_nodes == {0}
        assert sched.quarantined_cores(0) == 4
        # survivors finish and their cores come back without corruption
        clock.run()
        assert sched.free_cores == 4
        survivors = [u for u in units if u.succeeded]
        assert len(survivors) == 4

    def test_crashed_node_never_reused(self):
        sched, clock = make_scheduler(capacity=8)
        first = submit(sched, 8, duration=10.0)
        clock.run_until(
            lambda: all(u.state is UnitState.EXECUTING for u in first)
        )
        sched.crash_node(0)
        second = submit(sched, 4, duration=5.0)
        clock.run()
        assert all(u.succeeded for u in second)
        assert sched.capacity == 4
        assert sched.free_cores == 4  # everything released, nothing doubled

    def test_crash_out_of_range_or_repeat_is_noop(self):
        sched, clock = make_scheduler(capacity=8)
        assert sched.crash_node(99) == 0
        assert sched.crash_node(0) == 0  # nothing running
        assert sched.crash_node(0) == 0  # already quarantined
        assert sched.capacity == 4

    def test_queued_units_too_big_for_shrunken_pilot_fail(self):
        sched, clock = make_scheduler(capacity=8)
        running = submit(sched, 1, cores=8, duration=50.0)
        queued = submit(sched, 1, cores=8, duration=50.0)
        clock.run_until(lambda: running[0].state is UnitState.EXECUTING)
        sched.crash_node(1)
        # the queued 8-core unit can never fit in the remaining 4 cores
        assert queued[0].state is UnitState.FAILED


class TestSchedule:
    def test_build_schedule_deterministic(self):
        a = FaultDomainModel(
            node_crash_rate=50.0,
            schedule_rng=np.random.default_rng(42),
        )
        b = FaultDomainModel(
            node_crash_rate=50.0,
            schedule_rng=np.random.default_rng(42),
        )
        assert a.build_schedule(4, 7200.0) == b.build_schedule(4, 7200.0)

    def test_explicit_crashes_merged_sorted(self):
        fd = FaultDomainModel(node_crashes=[(30.0, 1), (10.0, 0)])
        assert fd.build_schedule(2, 100.0) == [(10.0, 0), (30.0, 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultDomainModel(node_crash_rate=-1.0)
        with pytest.raises(ValueError):
            FaultDomainModel(preempt_after_s=0.0)
        with pytest.raises(ValueError):
            FaultDomainModel(node_crashes=[(-1.0, 0)])


class TestPilotIntegration:
    def _session(self, fault_domain, cores=8):
        session = Session(fault_domain=fault_domain)
        pilot = session.submit_pilot(
            PilotDescription(resource=make_cluster(), cores=cores)
        )
        session.wait_pilot(pilot)
        return session, pilot

    def test_scheduled_crash_kills_and_records(self):
        fd = FaultDomainModel(node_crashes=[(5.0, 0)])
        session, pilot = self._session(fd)
        units = session.submit_units(
            pilot,
            [
                UnitDescription(name=f"u{i}", cores=1, duration=60.0)
                for i in range(8)
            ],
        )
        session.wait_units(units)
        assert sum(1 for u in units if u.state is UnitState.FAILED) == 4
        assert [e.kind for e in fd.events] == ["node_crash"]
        event = fd.events[0].to_dict()
        assert event["fault"] == "node_crash"
        assert event["units_killed"] == 4
        assert event["cores_lost"] == 4

    def test_preemption_requeue_reactivates(self):
        fd = FaultDomainModel(preempt_after_s=5.0, requeue=True)
        session, pilot = self._session(fd)
        units = session.submit_units(
            pilot,
            [UnitDescription(name="u0", cores=1, duration=60.0)],
        )
        session.clock.run_until(lambda: units[0].done)
        assert units[0].state is UnitState.FAILED
        # pilot went back through the queue and is (or will be) ACTIVE
        session.wait_pilot(pilot, PilotState.ACTIVE)
        relaunched = session.submit_units(
            pilot,
            [UnitDescription(name="u1", cores=1, duration=1.0)],
        )
        session.wait_units(relaunched)
        assert relaunched[0].succeeded
        assert [e.kind for e in fd.events] == ["preemption"]
        assert fd.events[0].detail["requeued"] is True

    def test_preemption_without_requeue_fails_pilot(self):
        fd = FaultDomainModel(preempt_after_s=5.0, requeue=False)
        session, pilot = self._session(fd)
        units = session.submit_units(
            pilot,
            [UnitDescription(name="u0", cores=1, duration=60.0)],
        )
        session.clock.run_until(lambda: units[0].done)
        assert pilot.state is PilotState.FAILED
        with pytest.raises(SchedulerError):
            pilot.submit_units([UnitDescription(name="u1", cores=1)])

    def test_requeued_pilot_keeps_remaining_schedule(self):
        # a crash scheduled after the preemption fires on the new agent
        fd = FaultDomainModel(
            node_crashes=[(40.0, 0)], preempt_after_s=5.0, requeue=True
        )
        session, pilot = self._session(fd)
        first = session.submit_units(
            pilot,
            [UnitDescription(name=f"a{i}", cores=1, duration=200.0)
             for i in range(8)],
        )
        session.wait_units(first)  # all killed by the preemption at +5s
        assert all(u.state is UnitState.FAILED for u in first)
        session.wait_pilot(pilot, PilotState.ACTIVE)
        second = session.submit_units(
            pilot,
            [UnitDescription(name=f"b{i}", cores=1, duration=200.0)
             for i in range(8)],
        )
        session.wait_units(second)  # crash at +40s hits the new agent
        kinds = [e.kind for e in fd.events]
        assert kinds.count("preemption") == 1
        assert kinds.count("node_crash") == 1
        assert sum(1 for u in second if u.state is UnitState.FAILED) == 4
        assert sum(1 for u in second if u.succeeded) == 4


class TestTransientFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransientFaultModel(probability=1.5)
        with pytest.raises(ValueError):
            TransientFaultModel(max_retries=-1)
        with pytest.raises(ValueError):
            TransientFaultModel(backoff_base_s=0.0)
        with pytest.raises(ValueError):
            TransientFaultModel(backoff_base_s=5.0, backoff_cap_s=1.0)
        with pytest.raises(ValueError):
            TransientFaultModel(jitter=-0.1)

    def test_disabled_model_consumes_no_rng(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        model = TransientFaultModel(probability=0.0, rng=rng)
        assert not any(model.draw_fault() for _ in range(50))
        assert rng.bit_generator.state == before

    def test_backoff_doubles_and_caps(self):
        model = TransientFaultModel(
            probability=0.5,
            rng=np.random.default_rng(0),
            backoff_base_s=1.0,
            backoff_cap_s=5.0,
            jitter=0.0,
        )
        assert model.backoff(1) == 1.0
        assert model.backoff(2) == 2.0
        assert model.backoff(3) == 4.0
        assert model.backoff(4) == 5.0  # capped
        with pytest.raises(ValueError):
            model.backoff(0)

    def test_backoff_jitter_deterministic_per_seed(self):
        mk = lambda: TransientFaultModel(
            probability=0.5, rng=np.random.default_rng(11), jitter=0.25
        )
        a, b = mk(), mk()
        seq_a = [a.backoff(i) for i in range(1, 5)]
        seq_b = [b.backoff(i) for i in range(1, 5)]
        assert seq_a == seq_b
        assert all(x >= y for x, y in zip(seq_a, [0.5, 1.0, 2.0, 4.0]))


class TestFaultEvent:
    def test_to_dict_flat(self):
        e = FaultEvent(t=1.23456789, kind="node_crash", detail={"node": 2})
        assert e.to_dict() == {"t": 1.234568, "fault": "node_crash", "node": 2}

    def test_sink_invoked_on_record(self):
        fd = FaultDomainModel(node_crashes=[(1.0, 0)])
        seen = []
        fd.add_sink(seen.append)
        fd.record(2.0, "node_crash", node=0)
        assert len(seen) == 1 and seen[0].kind == "node_crash"

"""Property-based tests for scheduler resource accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pilot.cluster import ClusterSpec, FilesystemModel, LaunchOverheadModel
from repro.pilot.events import EventQueue
from repro.pilot.scheduler import AgentScheduler
from repro.pilot.unit import ComputeUnit, UnitDescription


def make_scheduler(capacity):
    clock = EventQueue()
    cluster = ClusterSpec(
        name="p",
        nodes=max(1, capacity // 4 + 1),
        cores_per_node=4,
        launcher=LaunchOverheadModel(base_s=0.01, per_concurrent_s=0.001),
        filesystem=FilesystemModel(latency_s=0.001, metadata_op_s=0.0),
    )
    return AgentScheduler(clock, cluster, capacity=capacity), clock


unit_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),  # cores
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),  # dur
    ),
    min_size=1,
    max_size=40,
)


@given(specs=unit_specs, capacity=st.integers(min_value=8, max_value=64))
@settings(max_examples=100, deadline=None)
def test_all_units_complete_and_cores_restored(specs, capacity):
    sched, clock = make_scheduler(capacity)
    units = []
    for i, (cores, dur) in enumerate(specs):
        u = ComputeUnit(
            UnitDescription(name=f"u{i}", cores=cores, duration=dur)
        )
        sched.submit(u)
        units.append(u)
    clock.run()
    assert all(u.succeeded for u in units)
    assert sched.free_cores == capacity
    assert sched.n_running == 0
    assert sched.n_waiting == 0


@given(specs=unit_specs, capacity=st.integers(min_value=8, max_value=32))
@settings(max_examples=60, deadline=None)
def test_concurrent_core_usage_never_exceeds_capacity(specs, capacity):
    sched, clock = make_scheduler(capacity)
    units = []
    for i, (cores, dur) in enumerate(specs):
        u = ComputeUnit(
            UnitDescription(name=f"u{i}", cores=cores, duration=dur)
        )
        sched.submit(u)
        units.append(u)
    clock.run()
    # reconstruct concurrency from execution intervals
    events = []
    for u in units:
        start, end = u.start_time, u.end_time
        if start is None:
            continue
        events.append((start, u.description.cores))
        events.append((end, -u.description.cores))
    events.sort()
    usage = 0
    for _, delta in events:
        usage += delta
        assert usage <= capacity


@given(specs=unit_specs)
@settings(max_examples=60, deadline=None)
def test_fifo_start_order_for_uniform_cores(specs):
    """Single-core equal units must start in submission order."""
    sched, clock = make_scheduler(4)
    units = []
    for i, (_, dur) in enumerate(specs):
        u = ComputeUnit(
            UnitDescription(name=f"u{i}", cores=1, duration=dur)
        )
        sched.submit(u)
        units.append(u)
    clock.run()
    starts = [u.start_time for u in units]
    assert starts == sorted(starts)

"""Property-based tests across smaller components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import EnergyPlateauCriterion
from repro.core.replica import CycleRecord, Replica
from repro.md.perfmodel import deterministic_model
from repro.md.system import alanine_dipeptide
from repro.utils.charts import bar_chart, sparkline


def replica_with_energies(energies):
    rep = Replica(rid=0, coords=np.zeros(2), param_indices={"t": 0})
    for c, e in enumerate(energies):
        rep.history.append(
            CycleRecord(c, "t", {"t": 0}, float(e), 0.0)
        )
    return rep


energy_lists = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    min_size=4,
    max_size=20,
)


@given(
    energies=energy_lists,
    tol_lo=st.floats(min_value=0.01, max_value=10.0),
    factor=st.floats(min_value=1.0, max_value=10.0),
)
@settings(max_examples=150)
def test_plateau_criterion_monotone_in_tolerance(energies, tol_lo, factor):
    """If a replica terminates at tolerance t, it terminates at t' >= t."""
    rep = replica_with_energies(energies)
    lo = EnergyPlateauCriterion(window=3, tolerance=tol_lo)
    hi = EnergyPlateauCriterion(window=3, tolerance=tol_lo * factor)
    if lo.should_terminate(rep):
        assert hi.should_terminate(rep)


@given(
    energies=energy_lists,
    window=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=100)
def test_plateau_criterion_never_crashes(energies, window):
    rep = replica_with_energies(energies)
    crit = EnergyPlateauCriterion(window=window, tolerance=1.0)
    assert crit.should_terminate(rep) in (True, False)


@given(
    steps_a=st.integers(min_value=1, max_value=50000),
    steps_b=st.integers(min_value=1, max_value=50000),
    executable=st.sampled_from(["sander", "namd2", "pmemd.cuda"]),
)
@settings(max_examples=150)
def test_md_duration_monotone_in_steps(steps_a, steps_b, executable):
    perf = deterministic_model()
    system = alanine_dipeptide()
    lo, hi = sorted((steps_a, steps_b))
    t_lo = perf.md_duration(executable, system, lo, cores=1)
    t_hi = perf.md_duration(executable, system, hi, cores=1)
    assert t_lo > 0
    assert t_hi >= t_lo


@given(
    cores_a=st.integers(min_value=2, max_value=128),
    cores_b=st.integers(min_value=2, max_value=128),
)
@settings(max_examples=100)
def test_pmemd_duration_monotone_in_cores_within_scaling_regime(
    cores_a, cores_b
):
    """For the large (64366-atom) system, more cores helps up to ~128
    (its turnover point sits near 180 cores).  Beyond the turnover the
    model realistically gets slower — over-decomposition — which Fig. 12's
    'difficult to gain significant performance improvements' captures."""
    from repro.md.system import alanine_dipeptide_large

    perf = deterministic_model()
    system = alanine_dipeptide_large()
    lo, hi = sorted((cores_a, cores_b))
    t_lo = perf.md_duration("pmemd.MPI", system, 20000, cores=lo)
    t_hi = perf.md_duration("pmemd.MPI", system, 20000, cores=hi)
    assert t_hi <= t_lo + 1e-9


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=100)
def test_bar_chart_never_overflows_width(values):
    out = bar_chart([str(i) for i in range(len(values))], values, width=30)
    for line in out.splitlines():
        bar = line.split("|")[1]
        assert len(bar) == 30


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        max_size=50,
    )
)
@settings(max_examples=100)
def test_sparkline_length_matches(values):
    assert len(sparkline(values)) == len(values)

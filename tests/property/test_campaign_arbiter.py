"""Property-based tests for the campaign arbiter's invariants.

Randomized campaigns — tenants with arbitrary weights/quotas, session
mixes, durations and crash schedules — are driven through the arbiter
with scripted stub runners, and four invariants must hold on every one:

1. quotas are never exceeded at any instant,
2. every dispatch picks a tenant with minimal weighted usage among the
   then-eligible tenants (the bounded fair-share rule), and no node ever
   co-hosts two tenants,
3. a node crash kills only sessions of the node's owner (no cross-tenant
   fault leakage), and
4. the same campaign replays to the identical audit log (deterministic
   replay).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.campaign.arbiter import Arbiter, SessionRequest, SessionState
from repro.campaign.spec import DatacenterSpec, FaultSpec, TenantSpec

# -- campaign-shape strategies -------------------------------------------------

tenant_names = ("t0", "t1", "t2", "t3")

tenants_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=4.0, allow_nan=False),  # weight
        st.integers(min_value=0, max_value=3),                     # priority
        st.sampled_from([0, 8, 16, 32]),                           # quota_cores
        st.integers(min_value=0, max_value=3),                     # quota_sessions
    ),
    min_size=1,
    max_size=4,
)

sessions_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),            # tenant index
        st.sampled_from([1, 2, 4, 8, 12]),                # cores
        st.floats(min_value=1.0, max_value=500.0,
                  allow_nan=False, allow_infinity=False),  # duration
    ),
    min_size=1,
    max_size=12,
)

crashes_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=800.0,
                  allow_nan=False, allow_infinity=False),  # time
        st.integers(min_value=0, max_value=3),             # node
    ),
    max_size=4,
)

campaign_strategy = st.fixed_dictionaries(
    {
        "nodes": st.integers(min_value=1, max_value=4),
        "cores_per_node": st.sampled_from([4, 8]),
        "repair_s": st.floats(min_value=10.0, max_value=300.0,
                              allow_nan=False),
        "tenants": tenants_strategy,
        "sessions": sessions_strategy,
        "crashes": crashes_strategy,
        "queue_limit": st.sampled_from([0, 2, 6]),
        "relaunch_limit": st.integers(min_value=0, max_value=2),
    }
)


def build_campaign(shape):
    """Instantiate an arbiter + request list + scripted runner from a draw."""
    tenants = [
        TenantSpec(
            name=tenant_names[i],
            weight=weight,
            priority=priority,
            quota_cores=quota_cores,
            quota_sessions=quota_sessions,
        )
        for i, (weight, priority, quota_cores, quota_sessions) in enumerate(
            shape["tenants"]
        )
    ]
    crashes = [
        [t, node % shape["nodes"]] for t, node in shape["crashes"]
    ]
    arbiter = Arbiter(
        DatacenterSpec(
            nodes=shape["nodes"],
            cores_per_node=shape["cores_per_node"],
            repair_s=shape["repair_s"],
        ),
        tenants,
        faults=FaultSpec(node_crashes=crashes),
        queue_limit=shape["queue_limit"],
        relaunch_limit=shape["relaunch_limit"],
    )
    requests, durations = [], {}
    for i, (tenant_idx, cores, duration) in enumerate(shape["sessions"]):
        tenant = tenants[tenant_idx % len(tenants)]
        uid = f"{tenant.name}-{i:03d}"
        requests.append(
            SessionRequest(uid=uid, tenant=tenant.name, cores=cores)
        )
        durations[uid] = duration
    return arbiter, requests, durations


def drive(arbiter, requests, durations, observer=None):
    """Submit everything and run with a scripted (optionally spied) runner."""
    from repro.campaign.runner import stub_runner

    base = stub_runner(durations)

    def runner(request):
        if observer is not None:
            observer(request)
        return base(request)

    arbiter.prepare(runner)
    for request in requests:
        arbiter.submit(request)
    return arbiter.run(runner)


@settings(max_examples=60, deadline=None)
@given(shape=campaign_strategy)
def test_quotas_never_exceeded(shape):
    arbiter, requests, durations = build_campaign(shape)
    limits = {
        tenant_names[i]: (quota_cores, quota_sessions)
        for i, (_, _, quota_cores, quota_sessions) in enumerate(
            shape["tenants"]
        )
    }

    def check(_request):
        held_cores = {}
        held_sessions = {}
        for record in arbiter.records:
            if record.state is SessionState.RUNNING:
                tenant = record.request.tenant
                held_cores[tenant] = (
                    held_cores.get(tenant, 0) + record.request.cores
                )
                held_sessions[tenant] = held_sessions.get(tenant, 0) + 1
        for tenant, (quota_cores, quota_sessions) in limits.items():
            if quota_cores:
                assert held_cores.get(tenant, 0) <= quota_cores
            if quota_sessions:
                assert held_sessions.get(tenant, 0) <= quota_sessions

    records = drive(arbiter, requests, durations, observer=check)
    assert all(r.done for r in records)


@settings(max_examples=60, deadline=None)
@given(shape=campaign_strategy)
def test_fair_share_rule_and_node_exclusivity(shape):
    arbiter, requests, durations = build_campaign(shape)

    def check(_request):
        holders = {}
        for record in arbiter.records:
            if record.state is SessionState.RUNNING:
                for node in record.allocation:
                    holders.setdefault(node, set()).add(record.request.tenant)
        for node, tenants in holders.items():
            assert len(tenants) == 1, (
                f"node {node} co-hosts {sorted(tenants)}"
            )

    drive(arbiter, requests, durations, observer=check)
    # the audit records the weighted-usage basis of every dispatch:
    # the chosen tenant must have been minimal among the eligible
    for entry in arbiter.audit:
        if entry["event"] != "start":
            continue
        eligible = entry["eligible"]
        assert entry["tenant"] in eligible
        assert eligible[entry["tenant"]] <= min(eligible.values()) + 1e-9


@settings(max_examples=60, deadline=None)
@given(shape=campaign_strategy)
def test_no_cross_tenant_fault_leakage(shape):
    arbiter, requests, durations = build_campaign(shape)
    drive(arbiter, requests, durations)
    tenant_of = {r.request.uid: r.request.tenant for r in arbiter.records}
    for entry in arbiter.audit:
        if entry["event"] != "crash":
            continue
        killed_tenants = {tenant_of[uid] for uid in entry["killed"]}
        if entry["owner"] is None:
            assert not killed_tenants
        else:
            assert killed_tenants <= {entry["owner"]}


@settings(max_examples=40, deadline=None)
@given(shape=campaign_strategy)
def test_deterministic_replay(shape):
    first_arbiter, requests, durations = build_campaign(shape)
    drive(first_arbiter, requests, durations)
    second_arbiter, requests2, durations2 = build_campaign(shape)
    drive(second_arbiter, requests2, durations2)
    assert first_arbiter.audit == second_arbiter.audit
    assert first_arbiter.tenant_usage() == second_arbiter.tenant_usage()
    assert (
        first_arbiter.busy_core_seconds == second_arbiter.busy_core_seconds
    )


@settings(max_examples=60, deadline=None)
@given(shape=campaign_strategy)
def test_accounting_sums_and_final_states(shape):
    arbiter, requests, durations = build_campaign(shape)
    records = drive(arbiter, requests, durations)
    assert all(r.done for r in records)
    usage = arbiter.tenant_usage()
    assert sum(usage.values()) == pytest.approx(
        arbiter.busy_core_seconds, abs=1e-6
    )
    # per-record attempts reproduce the tenant totals exactly
    recomputed = {}
    for record in records:
        total = sum(
            record.request.cores * (end - start)
            for start, end in record.attempts
        )
        tenant = record.request.tenant
        recomputed[tenant] = recomputed.get(tenant, 0.0) + total
    for tenant, total in usage.items():
        assert total == pytest.approx(recomputed.get(tenant, 0.0), abs=1e-6)

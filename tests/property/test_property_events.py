"""Property-based tests for the DES event queue."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pilot.events import EventQueue


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=200)
def test_events_fire_in_nondecreasing_time_order(delays):
    q = EventQueue()
    fired_times = []
    for d in delays:
        q.schedule(d, lambda: fired_times.append(q.now))
    q.run()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30),
)
@settings(max_examples=200)
def test_cancelled_events_never_fire(delays, cancel_mask):
    q = EventQueue()
    fired = []
    events = []
    for i, d in enumerate(delays):
        events.append(q.schedule(d, lambda i=i: fired.append(i)))
    for ev, cancel in zip(events, cancel_mask):
        if cancel:
            ev.cancel()
    q.run()
    cancelled = {
        i
        for i, (ev, c) in enumerate(zip(events, cancel_mask))
        if c
    }
    assert set(fired).isdisjoint(cancelled)
    expected = set(range(len(delays))) - cancelled
    assert set(fired) == expected


@given(
    chain_depth=st.integers(min_value=1, max_value=20),
    step=st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
)
@settings(max_examples=100)
def test_chained_scheduling_advances_monotonically(chain_depth, step):
    q = EventQueue()
    times = []

    def tick(n):
        times.append(q.now)
        if n > 0:
            q.schedule(step, lambda: tick(n - 1))

    q.schedule(step, lambda: tick(chain_depth - 1))
    q.run()
    assert len(times) == chain_depth
    for a, b in zip(times, times[1:]):
        assert b >= a

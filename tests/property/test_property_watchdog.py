"""Property-based tests for the gray-failure watchdog.

Two invariants, checked across seeds:

1. **Speculative exactly-once** — a run with speculative relaunch
   completes each unit exactly once: ``scheduler.completed`` and the
   exchange attempt/accept counts match a run of the same config with
   speculation disabled, every speculative launch is settled as exactly
   one win or loss, and the physics (coordinates, exchange decisions)
   is unchanged — speculation may only move *time*, never results.

2. **Healthy cohorts are untouched** — with no gray faults injected,
   an enabled watchdog never kills, relaunches, escalates or
   speculates, and the run is bit-identical (fingerprint included) to
   one with the watchdog disabled.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    DimensionSpec,
    FailureSpec,
    ResourceSpec,
    SimulationConfig,
    WatchdogSpec,
)
from repro.core.framework import RepEx
from repro.obs.metrics import MetricsRegistry, using_registry


def _gray_config(seed: int, slow_factor: float, watchdog: WatchdogSpec):
    # 40 cores on SuperMIC's 20-core nodes, 5-core replicas: node 0's
    # four replicas are slow, node 1's four form the healthy cohort
    # whose completions feed the straggler median.
    return SimulationConfig(
        title="prop-watchdog",
        dimensions=[DimensionSpec("temperature", 8, 273.0, 373.0)],
        resource=ResourceSpec("supermic", cores=40),
        cores_per_replica=5,
        n_cycles=2,
        steps_per_cycle=6000,
        numeric_steps=10,
        sample_stride=0,
        failure=FailureSpec(policy="continue", slow_nodes=[[0, slow_factor]]),
        watchdog=watchdog,
        seed=seed,
    )


def _run(config):
    with using_registry(MetricsRegistry()) as registry:
        result = RepEx(config).run()
        counters = registry.snapshot()["counters"]
    return result, counters


def _physics(result):
    """Everything time-independent a run produces."""
    return [
        (
            [
                (rep.rid, tuple(map(float, rep.coords)),
                 tuple(sorted(rep.param_indices.items())), rep.cycle)
                for rep in result.replicas
            ]
        ),
        {
            name: (s.attempted, s.accepted)
            for name, s in sorted(result.exchange_stats.items())
        },
        [(p.rid_i, p.rid_j, p.dimension, p.accepted)
         for p in result.proposals],
    ]


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    slow_factor=st.sampled_from([3.0, 4.0, 6.0]),
)
@settings(max_examples=15, deadline=None)
def test_speculative_completion_is_exactly_once(seed, slow_factor):
    watchdog = WatchdogSpec(
        enabled=True,
        deadline_factor=2 * slow_factor,  # speculation, not deadline kills
        check_interval_s=10.0,
        speculative=True,
    )
    spec_result, spec_counters = _run(_gray_config(seed, slow_factor, watchdog))
    plain_result, plain_counters = _run(
        _gray_config(
            seed, slow_factor, dataclasses.replace(watchdog, speculative=False)
        )
    )

    launches = spec_counters.get("watchdog.speculative_launches", 0)
    wins = spec_counters.get("watchdog.speculative_wins", 0)
    losses = spec_counters.get("watchdog.speculative_losses", 0)
    assert launches > 0, "scenario never speculated — it tests nothing"
    assert wins + losses == launches
    # the duplicate never double-completes: the scheduler's completion
    # count matches the run where no duplicate ever existed
    assert (
        spec_counters["scheduler.completed"]
        == plain_counters["scheduler.completed"]
    )
    assert spec_result.n_failures == plain_result.n_failures
    assert _physics(spec_result) == _physics(plain_result)


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_watchdog_never_fires_on_healthy_cohorts(seed):
    base = SimulationConfig(
        title="prop-healthy",
        dimensions=[DimensionSpec("temperature", 8, 273.0, 373.0)],
        resource=ResourceSpec("supermic", cores=8),
        n_cycles=2,
        steps_per_cycle=6000,
        numeric_steps=10,
        sample_stride=0,
        seed=seed,
    )
    watched = dataclasses.replace(
        base,
        watchdog=WatchdogSpec(
            enabled=True, check_interval_s=10.0, speculative=True
        ),
    )
    ref_result, _ = _run(base)
    dog_result, dog_counters = _run(watched)

    for name in (
        "watchdog.deadline_kills",
        "watchdog.relaunches",
        "watchdog.escalations",
        "watchdog.stragglers",
        "watchdog.speculative_launches",
    ):
        assert dog_counters.get(name, 0) == 0, name
    assert dog_result.fingerprint() == ref_result.fingerprint()

"""Property-based tests for the metrics instruments."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=50,
)

quantiles = st.floats(min_value=0.0, max_value=1.0)


def histogram_with(values):
    h = Histogram("test")
    for v in values:
        h.observe(v)
    return h


def _slack(*values):
    """Interpolation rounds at the last ulp; allow that much and no more."""
    return 1e-9 * max(1.0, *(abs(v) for v in values))


@given(values=samples, q1=quantiles, q2=quantiles)
@settings(max_examples=200)
def test_quantile_monotonic_in_q(values, q1, q2):
    h = histogram_with(values)
    lo, hi = sorted((q1, q2))
    assert h.quantile(lo) <= h.quantile(hi) + _slack(*values)


@given(values=samples, q=quantiles)
@settings(max_examples=200)
def test_quantile_bounded_by_observed_extremes(values, q):
    h = histogram_with(values)
    value = h.quantile(q)
    assert min(values) - _slack(*values) <= value
    assert value <= max(values) + _slack(*values)


@given(values=samples)
@settings(max_examples=100)
def test_quantile_endpoints_are_exact_order_statistics(values):
    h = histogram_with(values)
    assert h.quantile(0.0) == min(values)
    assert h.quantile(1.0) == max(values)


@given(value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), q=quantiles)
@settings(max_examples=100)
def test_quantile_exact_for_single_observation(value, q):
    h = histogram_with([value])
    assert h.quantile(q) == value

"""Property-based tests for exchange invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ram
from repro.core.exchange.pairing import (
    GibbsPairing,
    NeighborPairing,
    RandomPairing,
)
from repro.core.exchange.temperature import TemperatureDimension
from repro.core.replica import Replica
from repro.md.toymd import ThermodynamicState


def build_group(energies):
    group = []
    for i, e in enumerate(energies):
        r = Replica(
            rid=i, coords=np.zeros(2), param_indices={"temperature": i}
        )
        r.last_energies = {"potential_energy": float(e)}
        group.append(r)
    return group


energies_strategy = st.lists(
    st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False),
    min_size=2,
    max_size=16,
)


@given(
    energies=energies_strategy,
    cycle=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    selector_name=st.sampled_from(["neighbor", "random", "gibbs"]),
)
@settings(max_examples=200, deadline=None)
def test_window_multiset_invariant(energies, cycle, seed, selector_name):
    """No exchange procedure may create or destroy ladder rungs."""
    n = len(energies)
    dim = TemperatureDimension.geometric(273.0, 373.0, n)
    group = build_group(energies)
    states = {
        r.rid: ThermodynamicState(float(dim.value(i)))
        for i, r in enumerate(group)
    }
    selector = {
        "neighbor": NeighborPairing(),
        "random": RandomPairing(),
        "gibbs": GibbsPairing(n_sweeps=2),
    }[selector_name]
    proposals = ram.compute_exchange(
        dim, group, states, selector, cycle, np.random.default_rng(seed)
    )
    windows = ram.final_windows(group, dim, proposals)
    assert sorted(windows.values()) == list(range(n))


@given(
    energies=energies_strategy,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=150, deadline=None)
def test_deltas_antisymmetric_under_relabeling(energies, seed):
    """delta(i, j) computed both ways must agree up to sign structure:
    the exponent depends only on the unordered pair through its definition,
    so computing with swapped argument order flips arguments consistently."""
    n = len(energies)
    dim = TemperatureDimension.geometric(273.0, 373.0, n)
    group = build_group(energies)
    states = {
        r.rid: ThermodynamicState(float(dim.value(i)))
        for i, r in enumerate(group)
    }
    a, b = group[0], group[1]
    d_ab = dim.exchange_delta(
        a, b, window_i=0, window_j=1, states=states
    )
    d_ba = dim.exchange_delta(
        b, a, window_i=1, window_j=0, states=states
    )
    assert abs(d_ab - d_ba) < 1e-9


@given(
    energies=energies_strategy,
    cycle=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=150, deadline=None)
def test_proposals_connect_adjacent_windows_only(energies, cycle, seed):
    """Neighbour pairing must never propose non-adjacent rungs."""
    n = len(energies)
    dim = TemperatureDimension.geometric(273.0, 373.0, n)
    group = build_group(energies)
    states = {
        r.rid: ThermodynamicState(float(dim.value(i)))
        for i, r in enumerate(group)
    }
    proposals = ram.compute_exchange(
        dim, group, states, NeighborPairing(), cycle,
        np.random.default_rng(seed),
    )
    for p in proposals:
        assert abs(p.rid_i - p.rid_j) == 1

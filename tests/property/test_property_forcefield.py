"""Property-based tests for the force field."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.forcefield import (
    ForceField,
    UmbrellaRestraint,
    debye_screening_factor,
    wrap_angle,
)

angle = st.floats(
    min_value=-math.pi, max_value=math.pi, allow_nan=False,
    allow_infinity=False,
)
any_angle = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
salt = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)

FF = ForceField()


@given(phi=any_angle, psi=any_angle)
@settings(max_examples=300)
def test_energy_is_2pi_periodic(phi, psi):
    e1 = float(FF.rama_energy(phi, psi))
    e2 = float(FF.rama_energy(phi + 2 * math.pi, psi - 2 * math.pi))
    assert abs(e1 - e2) < 1e-9


@given(phi=angle, psi=angle, c=salt)
@settings(max_examples=200)
def test_energy_bounded(phi, psi, c):
    e = float(FF.energy(phi, psi, salt_molar=c))
    assert -FF.elec_amplitude - 1e-9 <= e <= FF.offset + FF.elec_amplitude


@given(phi=angle, psi=angle, c=salt)
@settings(max_examples=150)
def test_gradient_matches_finite_difference(phi, psi, c):
    h = 1e-6
    gphi, gpsi = FF.gradient(phi, psi, salt_molar=c)
    num_phi = (
        float(FF.energy(phi + h, psi, salt_molar=c))
        - float(FF.energy(phi - h, psi, salt_molar=c))
    ) / (2 * h)
    assert abs(float(gphi) - num_phi) < 1e-3


@given(c1=salt, c2=salt)
@settings(max_examples=100)
def test_screening_monotone_decreasing(c1, c2):
    lo, hi = sorted((c1, c2))
    assert debye_screening_factor(hi) <= debye_screening_factor(lo) + 1e-12


@given(x=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
@settings(max_examples=200)
def test_wrap_angle_idempotent(x):
    w1 = float(wrap_angle(x))
    w2 = float(wrap_angle(w1))
    assert abs(w1 - w2) < 1e-12
    assert -math.pi <= w1 < math.pi


@given(
    center=st.floats(min_value=-360.0, max_value=720.0, allow_nan=False),
    k=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
    phi=angle,
)
@settings(max_examples=200)
def test_restraint_energy_nonnegative_and_zero_at_center(center, k, phi):
    r = UmbrellaRestraint("phi", center, k)
    assert float(r.energy(phi, 0.0)) >= 0.0
    assert float(r.energy(math.radians(center), 0.0)) < 1e-9

"""Property-based tests for configuration round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    DimensionSpec,
    PatternSpec,
    ResourceSpec,
    SimulationConfig,
)

dim_strategy = st.one_of(
    st.builds(
        DimensionSpec,
        kind=st.just("temperature"),
        n_windows=st.integers(min_value=1, max_value=12),
        min_value=st.floats(min_value=200.0, max_value=300.0),
        max_value=st.floats(min_value=300.0, max_value=500.0),
    ),
    st.builds(
        DimensionSpec,
        kind=st.just("umbrella"),
        n_windows=st.integers(min_value=1, max_value=12),
        min_value=st.just(0.0),
        max_value=st.just(360.0),
        angle=st.sampled_from(["phi", "psi"]),
        force_constant=st.floats(min_value=0.0, max_value=0.05),
    ),
    st.builds(
        DimensionSpec,
        kind=st.just("salt"),
        n_windows=st.integers(min_value=1, max_value=12),
        min_value=st.just(0.0),
        max_value=st.floats(min_value=0.1, max_value=5.0),
    ),
)

config_strategy = st.builds(
    SimulationConfig,
    title=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
        min_size=1,
        max_size=20,
    ),
    dimensions=st.lists(dim_strategy, min_size=1, max_size=3),
    resource=st.builds(
        ResourceSpec,
        name=st.sampled_from(["supermic", "stampede", "small-cluster"]),
        cores=st.integers(min_value=1, max_value=4096),
    ),
    pattern=st.builds(
        PatternSpec,
        kind=st.sampled_from(["synchronous", "asynchronous"]),
        window_seconds=st.floats(min_value=1.0, max_value=600.0),
    ),
    n_cycles=st.integers(min_value=1, max_value=100),
    steps_per_cycle=st.integers(min_value=1, max_value=100000),
    cores_per_replica=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


@given(cfg=config_strategy)
@settings(max_examples=200)
def test_dict_roundtrip_preserves_everything(cfg):
    again = SimulationConfig.from_dict(cfg.to_dict())
    assert again.to_dict() == cfg.to_dict()


@given(cfg=config_strategy)
@settings(max_examples=200)
def test_json_roundtrip(cfg):
    again = SimulationConfig.from_json(cfg.to_json())
    assert again.to_dict() == cfg.to_dict()


@given(cfg=config_strategy)
@settings(max_examples=200)
def test_replica_count_is_window_product(cfg):
    expected = 1
    for d in cfg.dimensions:
        expected *= d.n_windows
    assert cfg.n_replicas == expected


@given(cfg=config_strategy)
@settings(max_examples=100)
def test_build_dimensions_unique_names(cfg):
    names = [d.name for d in cfg.build_dimensions()]
    assert len(names) == len(set(names))


@given(cfg=config_strategy)
@settings(max_examples=100)
def test_effective_mode_consistent(cfg):
    mode = cfg.effective_mode
    workload = cfg.n_replicas * cfg.cores_per_replica
    if workload <= cfg.resource.cores:
        assert mode == "I"
    else:
        assert mode == "II"

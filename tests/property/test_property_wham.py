"""Property-based tests for the WHAM solver."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.wham import Grid2D, WindowData, wham_2d
from repro.md.forcefield import UmbrellaRestraint


@given(
    seed=st.integers(min_value=0, max_value=1000),
    n_bins=st.integers(min_value=4, max_value=16),
    n_samples=st.integers(min_value=500, max_value=3000),
)
@settings(max_examples=30, deadline=None)
def test_probability_nonnegative_and_free_energy_min_zero(
    seed, n_bins, n_samples
):
    rng = np.random.default_rng(seed)
    samples = rng.uniform(-np.pi, np.pi, size=(n_samples, 2))
    res = wham_2d(
        [WindowData(restraints=(), samples=samples)],
        300.0,
        grid=Grid2D(n_bins=n_bins),
    )
    assert np.all(res.probability >= 0.0)
    finite = res.free_energy[np.isfinite(res.free_energy)]
    assert finite.size > 0
    assert abs(finite.min()) < 1e-9


@given(
    seed=st.integers(min_value=0, max_value=1000),
    temperature=st.floats(min_value=250.0, max_value=450.0),
)
@settings(max_examples=20, deadline=None)
def test_gauge_invariance_first_window(seed, temperature):
    rng = np.random.default_rng(seed)
    windows = [
        WindowData(
            restraints=(UmbrellaRestraint("phi", c, 0.0003),),
            samples=np.stack(
                [
                    rng.normal(np.radians(c), 0.5, 2000),
                    rng.uniform(-np.pi, np.pi, 2000),
                ],
                axis=1,
            ),
        )
        for c in (-60.0, 60.0)
    ]
    res = wham_2d(windows, temperature, grid=Grid2D(n_bins=8))
    assert res.f_k[0] == 1.0


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=20, deadline=None)
def test_sample_count_preserved_in_histograms(seed):
    rng = np.random.default_rng(seed)
    grid = Grid2D(n_bins=10)
    samples = rng.uniform(-np.pi, np.pi - 1e-9, size=(777, 2))
    h = grid.histogram(samples)
    assert int(h.sum()) == 777


@given(
    seed=st.integers(min_value=0, max_value=500),
    scale=st.floats(min_value=1.0, max_value=100.0),
)
@settings(max_examples=20, deadline=None)
def test_free_energy_invariant_under_sample_duplication(seed, scale):
    """Duplicating every sample k times must not change the surface."""
    rng = np.random.default_rng(seed)
    base = rng.normal(0.0, 0.6, size=(1500, 2))
    base = (base + np.pi) % (2 * np.pi) - np.pi
    res1 = wham_2d(
        [WindowData(restraints=(), samples=base)],
        300.0,
        grid=Grid2D(n_bins=8),
    )
    res2 = wham_2d(
        [WindowData(restraints=(), samples=np.tile(base, (3, 1)))],
        300.0,
        grid=Grid2D(n_bins=8),
    )
    f1, f2 = res1.free_energy, res2.free_energy
    mask = np.isfinite(f1) & np.isfinite(f2)
    assert np.allclose(f1[mask], f2[mask], atol=1e-9)

"""Property-based tests for pair selection and the Metropolis criterion.

Complements ``test_property_exchange.py`` (window-multiset invariance)
with the pairing-level invariants: disjointness and adjacency for every
selector, symmetry of the exchange exponent under pair reversal, and the
empirical acceptance rate of :func:`metropolis_accept` against
``min(1, exp(-delta))``.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exchange.base import metropolis_accept, metropolis_delta
from repro.core.exchange.pairing import (
    GibbsPairing,
    NeighborPairing,
    RandomPairing,
)
from repro.core.exchange.temperature import TemperatureDimension
from repro.core.replica import Replica
from repro.md.toymd import ThermodynamicState


def make_group(n):
    return [
        Replica(
            rid=i, coords=np.zeros(2), param_indices={"temperature": i}
        )
        for i in range(n)
    ]


@given(
    n=st.integers(min_value=0, max_value=33),
    cycle=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=100, deadline=None)
def test_neighbor_pairs_disjoint_and_adjacent(n, cycle):
    """DEO pairing touches each replica at most once, neighbours only."""
    pairs = NeighborPairing().pairs(
        make_group(n), cycle, np.random.default_rng(0)
    )
    seen = [r.rid for p in pairs for r in p]
    assert len(seen) == len(set(seen))
    for a, b in pairs:
        assert b.rid - a.rid == 1
        assert a.rid % 2 == cycle % 2


@given(
    n=st.integers(min_value=0, max_value=33),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=100, deadline=None)
def test_random_pairs_disjoint(n, seed):
    """Random pairing is a partial matching: no replica appears twice."""
    pairs = RandomPairing().pairs(
        make_group(n), 0, np.random.default_rng(seed)
    )
    seen = [r.rid for p in pairs for r in p]
    assert len(seen) == len(set(seen))
    assert len(pairs) == n // 2


@given(
    n=st.integers(min_value=2, max_value=16),
    cycle=st.integers(min_value=0, max_value=5),
    n_sweeps=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=100, deadline=None)
def test_gibbs_pairs_are_neighbor_sweeps(n, cycle, n_sweeps):
    """Gibbs pairing is exactly n_sweeps alternating DEO passes."""
    rng = np.random.default_rng(0)
    group = make_group(n)
    got = GibbsPairing(n_sweeps=n_sweeps).pairs(group, cycle, rng)
    expected = []
    for sweep in range(n_sweeps):
        expected.extend(
            NeighborPairing().pairs(group, cycle + sweep, rng)
        )
    assert [(a.rid, b.rid) for a, b in got] == [
        (a.rid, b.rid) for a, b in expected
    ]


@given(
    n=st.integers(min_value=2, max_value=24),
    cycle=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_neighbor_pairing_is_positional(n, cycle):
    """Pairing depends only on ladder positions, not replica identity:
    relabelling rids leaves the selected positions unchanged."""
    rng = np.random.default_rng(0)
    base = NeighborPairing().pairs(make_group(n), cycle, rng)
    relabeled = [
        Replica(
            rid=1000 - i, coords=np.zeros(2),
            param_indices={"temperature": i},
        )
        for i in range(n)
    ]
    perm = NeighborPairing().pairs(relabeled, cycle, rng)
    base_pos = [(a.rid, b.rid) for a, b in base]
    perm_pos = [(1000 - a.rid, 1000 - b.rid) for a, b in perm]
    assert base_pos == perm_pos


@given(
    u_i=st.floats(min_value=-500.0, max_value=500.0, allow_nan=False),
    u_j=st.floats(min_value=-500.0, max_value=500.0, allow_nan=False),
    w_i=st.integers(min_value=0, max_value=7),
    w_j=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=200, deadline=None)
def test_temperature_delta_symmetric_under_pair_reversal(u_i, u_j, w_i, w_j):
    """Delta(i, j) == Delta(j, i): the acceptance probability cannot
    depend on which replica of the pair is named first."""
    dim = TemperatureDimension.geometric(273.0, 373.0, 8)
    rep_i, rep_j = make_group(2)
    rep_i.last_energies = {"potential_energy": u_i}
    rep_j.last_energies = {"potential_energy": u_j}
    states = {
        rep_i.rid: ThermodynamicState(float(dim.value(w_i))),
        rep_j.rid: ThermodynamicState(float(dim.value(w_j))),
    }
    d_ij = dim.exchange_delta(
        rep_i, rep_j, window_i=w_i, window_j=w_j, states=states
    )
    d_ji = dim.exchange_delta(
        rep_j, rep_i, window_i=w_j, window_j=w_i, states=states
    )
    assert d_ij == d_ji


@given(
    betas=st.tuples(
        st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    ),
    energies=st.tuples(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    ),
)
@settings(max_examples=200, deadline=None)
def test_general_delta_symmetric_under_pair_reversal(betas, energies):
    """The generalized exponent is symmetric when both labels swap."""
    beta_i, beta_j = betas
    e_ii, e_ij, e_ji, e_jj = energies
    forward = metropolis_delta(beta_i, beta_j, e_ii, e_ij, e_ji, e_jj)
    # swapping i<->j relabels both the betas and the energy matrix
    backward = metropolis_delta(beta_j, beta_i, e_jj, e_ji, e_ij, e_ii)
    assert forward == backward


def test_metropolis_accepts_nonpositive_delta():
    rng = np.random.default_rng(3)
    for delta in (0.0, -1e-12, -0.5, -100.0):
        assert metropolis_accept(delta, rng)


def test_metropolis_empirical_rate_matches_probability():
    """Seeded empirical acceptance rate tracks min(1, exp(-delta))."""
    rng = np.random.default_rng(2016)
    n = 20000
    for delta in (0.25, 1.0, 3.0):
        accepted = sum(metropolis_accept(delta, rng) for _ in range(n))
        expected = math.exp(-delta)
        rate = accepted / n
        # three-sigma band of the binomial
        sigma = math.sqrt(expected * (1 - expected) / n)
        assert abs(rate - expected) < 4 * sigma


def test_metropolis_huge_delta_never_accepts():
    rng = np.random.default_rng(5)
    assert not any(metropolis_accept(1e6, rng) for _ in range(100))

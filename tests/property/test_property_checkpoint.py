"""Property-based tests for checkpoint (de)serialization robustness.

The contract under fuzzing: ``Checkpoint.from_json`` either returns a
fully validated :class:`Checkpoint` or raises :class:`CheckpointError`
with a readable message — never a bare ``JSONDecodeError``, ``KeyError``
or ``TypeError`` from deep inside the parser — and a clean round trip is
byte-identical.  Both schema flavours (synchronous cycle-boundary and
asynchronous quiesce) are fuzzed.
"""

import json
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RepEx
from repro.core.checkpoint import Checkpoint, CheckpointError
from repro.core.config import PatternSpec
from tests.conftest import small_tremd_config


@lru_cache(maxsize=None)
def checkpoint_text(kind: str) -> str:
    """The JSON of a real checkpoint of each pattern (computed once)."""
    if kind == "sync":
        repex = RepEx(small_tremd_config(), checkpoint_every=1)
    else:
        config = small_tremd_config(
            pattern=PatternSpec(kind="asynchronous"), n_cycles=3
        )
        repex = RepEx(config, checkpoint_every_s=120.0)
    repex.run()
    assert repex.checkpoints, f"no checkpoint captured for {kind}"
    return repex.checkpoints[0].to_json()


KINDS = ("sync", "async")

#: junk slices spliced into the JSON text by the corruption strategy
junk = st.text(
    alphabet='abc{}[]",:0123456789.-truefalsnl ', min_size=0, max_size=12
)


def loads_or_checkpoint_error(text: str):
    """The fuzzing contract: a Checkpoint or a CheckpointError, only."""
    try:
        ckpt = Checkpoint.from_json(text)
    except CheckpointError as exc:
        # the message is for humans: never an empty or bare-class error
        assert str(exc)
        return None
    return ckpt


@pytest.mark.parametrize("kind", KINDS)
def test_round_trip_is_byte_identical(kind):
    text = checkpoint_text(kind)
    clone = Checkpoint.from_json(text)
    assert clone.to_json() == text
    # and idempotently so
    assert Checkpoint.from_json(clone.to_json()).to_json() == text


@pytest.mark.parametrize("kind", KINDS)
@given(frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
@settings(max_examples=60, deadline=None)
def test_truncation_always_raises_checkpoint_error(kind, frac):
    text = checkpoint_text(kind)
    cut = int(frac * len(text))
    with pytest.raises(CheckpointError):
        Checkpoint.from_json(text[:cut])


@pytest.mark.parametrize("kind", KINDS)
@given(
    start=st.floats(min_value=0.0, max_value=1.0),
    length=st.integers(min_value=1, max_value=40),
    replacement=junk,
)
@settings(max_examples=100, deadline=None)
def test_splice_corruption_never_leaks_bare_errors(
    kind, start, length, replacement
):
    text = checkpoint_text(kind)
    i = int(start * (len(text) - 1))
    corrupted = text[:i] + replacement + text[i + length :]
    loads_or_checkpoint_error(corrupted)


@pytest.mark.parametrize("kind", KINDS)
@given(key_index=st.integers(min_value=0, max_value=200))
@settings(max_examples=60, deadline=None)
def test_deleting_any_top_level_key_is_handled(kind, key_index):
    data = json.loads(checkpoint_text(kind))
    keys = sorted(data)
    del data[keys[key_index % len(keys)]]
    loads_or_checkpoint_error(json.dumps(data))


@pytest.mark.parametrize("kind", KINDS)
@given(
    key_index=st.integers(min_value=0, max_value=200),
    value=st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-10, max_value=10),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=8),
        st.lists(st.integers(min_value=0, max_value=3), max_size=3),
    ),
)
@settings(max_examples=120, deadline=None)
def test_mangling_any_top_level_value_is_handled(kind, key_index, value):
    data = json.loads(checkpoint_text(kind))
    keys = sorted(data)
    data[keys[key_index % len(keys)]] = value
    loads_or_checkpoint_error(json.dumps(data))


@given(key_index=st.integers(min_value=0, max_value=200))
@settings(max_examples=30, deadline=None)
def test_async_state_missing_keys_raise_checkpoint_error(key_index):
    data = json.loads(checkpoint_text("async"))
    keys = sorted(data["async_state"])
    removed = keys[key_index % len(keys)]
    del data["async_state"][removed]
    if removed == "window_next_t":
        # the only optional member of the block
        loads_or_checkpoint_error(json.dumps(data))
    else:
        with pytest.raises(CheckpointError, match="async_state"):
            Checkpoint.from_json(json.dumps(data))


@pytest.mark.parametrize("kind", KINDS)
def test_required_blocks_raise_with_clear_messages(kind):
    for key, pattern in (
        ("rng", "corrupted checkpoint"),
        ("accounting", "corrupted checkpoint"),
        ("t_now", "malformed checkpoint"),
    ):
        data = json.loads(checkpoint_text(kind))
        del data[key]
        with pytest.raises(CheckpointError, match=pattern):
            Checkpoint.from_json(json.dumps(data))


def test_wrong_config_hash_is_rejected_at_restore(tmp_path):
    data = json.loads(checkpoint_text("sync"))
    data["config_hash"] = "0" * len(data["config_hash"])
    # a genuinely foreign checkpoint is internally consistent: re-stamp
    # the content checksum so tamper detection doesn't fire first
    data["checksum"] = Checkpoint._content_checksum(data)
    path = tmp_path / "foreign.json"
    path.write_text(json.dumps(data))
    resumed = RepEx(small_tremd_config(), resume_from=path)
    with pytest.raises(CheckpointError, match="different configuration"):
        resumed.run()

"""Indexed-scheduler equivalence: the fast path is the linear scan.

``AgentScheduler(indexed=True)`` replaces the original linear node scan
and full waiting-queue rescans with a sorted free-node index and an
incremental occupancy gauge.  That is a pure data-structure change: for
any sequence of submits, completions, crashes and preemptions it must
make byte-for-byte the same placement decisions as the ``indexed=False``
reference implementation.  These tests drive both variants through
randomized schedules and compare everything observable — placements,
unit lifecycles, timings and final resource accounting — and replay the
golden sync trace against the linear reference to pin the equivalence to
the committed fixture as well.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.pilot.scheduler as scheduler_mod
from repro.core import RepEx
from repro.pilot.cluster import ClusterSpec, FilesystemModel, LaunchOverheadModel
from repro.pilot.events import EventQueue
from repro.pilot.scheduler import AgentScheduler, SchedulerError
from repro.pilot.unit import ComputeUnit, UnitDescription
from tests.conftest import small_tremd_config


def make_scheduler(capacity, indexed):
    clock = EventQueue()
    cluster = ClusterSpec(
        name="p",
        nodes=max(1, capacity // 4 + 1),
        cores_per_node=4,
        launcher=LaunchOverheadModel(base_s=0.01, per_concurrent_s=0.001),
        filesystem=FilesystemModel(latency_s=0.001, metadata_op_s=0.0),
    )
    return AgentScheduler(clock, cluster, capacity=capacity, indexed=indexed), clock


def run_script(specs, crashes, capacity, indexed):
    """Drive one scheduler variant through a submit/crash schedule.

    Returns every observable outcome: per-unit node placements, the full
    unit lifecycles with timings, and the final resource accounting.
    """
    sched, clock = make_scheduler(capacity, indexed)
    placements = {}
    orig_place = sched._place

    def recording_place(unit):
        orig_place(unit)
        placements[unit.description.name] = dict(sched._placement[unit])

    sched._place = recording_place

    units = []
    rejected = []

    def submit(unit):
        # a crash may shrink capacity below the unit's request before its
        # submit event fires; both variants must reject identically
        try:
            sched.submit(unit)
        except SchedulerError:
            rejected.append(unit.description.name)

    for i, (delay, cores, dur) in enumerate(specs):
        unit = ComputeUnit(
            UnitDescription(name=f"u{i}", cores=cores, duration=dur)
        )
        clock.schedule(delay, lambda u=unit: submit(u))
        units.append(unit)
    for delay, node in crashes:
        clock.schedule(delay, lambda n=node: sched.crash_node(n))
    clock.run()
    lifecycle = [
        (u.description.name, u.state.name, u.start_time, u.end_time)
        for u in units
    ]
    accounting = (
        sched.free_cores,
        sched.capacity,
        sched.n_running,
        sched.n_waiting,
        frozenset(sched.quarantined_nodes),
    )
    return placements, lifecycle, accounting, rejected


unit_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),  # delay
        st.integers(min_value=1, max_value=8),  # cores
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),  # duration
    ),
    min_size=1,
    max_size=30,
)

crash_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=60.0, allow_nan=False),  # when
        st.integers(min_value=0, max_value=15),  # node (may not exist)
    ),
    max_size=3,
)


@given(specs=unit_specs, capacity=st.integers(min_value=8, max_value=48))
@settings(max_examples=80, deadline=None)
def test_indexed_placements_match_linear_reference(specs, capacity):
    indexed = run_script(specs, [], capacity, indexed=True)
    linear = run_script(specs, [], capacity, indexed=False)
    assert indexed == linear


@given(
    specs=unit_specs,
    crashes=crash_specs,
    capacity=st.integers(min_value=8, max_value=48),
)
@settings(max_examples=80, deadline=None)
def test_equivalence_survives_crashes_and_quarantine(specs, crashes, capacity):
    indexed = run_script(specs, crashes, capacity, indexed=True)
    linear = run_script(specs, crashes, capacity, indexed=False)
    assert indexed == linear


def test_golden_sync_trace_identical_with_linear_reference(monkeypatch):
    """The committed golden trace is scheduler-index independent."""
    from tests.integration.test_golden_trace import FIXTURES

    orig_init = AgentScheduler.__init__

    def linear_init(self, *args, **kwargs):
        kwargs["indexed"] = False
        orig_init(self, *args, **kwargs)

    monkeypatch.setattr(scheduler_mod.AgentScheduler, "__init__", linear_init)
    result = RepEx(small_tremd_config()).run()
    produced = json.dumps(result.manifest.timeline, separators=(",", ":"))
    expected = (FIXTURES / "golden_sync_timeline.json").read_text()
    assert produced == expected

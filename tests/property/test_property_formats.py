"""Property-based round-trip tests for the engine file dialects.

The adapters' text formats are the RAM/AMM contract: whatever the AMM
serializes, the remote side must parse back exactly.  Fuzz the full
parameter space of both dialects.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.amber import AmberAdapter
from repro.md.forcefield import UmbrellaRestraint
from repro.md.namd import NAMDAdapter
from repro.md.sandbox import Sandbox
from repro.md.toymd import MDParams, ThermodynamicState

angles = st.sampled_from(["phi", "psi"])
restraint_strategy = st.builds(
    UmbrellaRestraint,
    angle=angles,
    center_deg=st.floats(
        min_value=-360.0, max_value=720.0, allow_nan=False
    ).map(lambda x: round(x, 1)),
    k=st.floats(min_value=0.0, max_value=0.1, allow_nan=False).map(
        lambda x: round(x, 4)
    ),
)

state_strategy = st.builds(
    ThermodynamicState,
    temperature=st.floats(min_value=100.0, max_value=900.0).map(
        lambda x: round(x, 3)
    ),
    salt_molar=st.floats(min_value=0.0, max_value=5.0).map(
        lambda x: round(x, 4)
    ),
    restraints=st.lists(restraint_strategy, max_size=3).map(tuple),
)

params_strategy = st.builds(
    MDParams,
    n_steps=st.integers(min_value=1, max_value=100000),
    sample_stride=st.integers(min_value=1, max_value=1000),
)

coords_strategy = st.tuples(
    st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False),
    st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False),
).map(lambda t: np.array(t))

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(
    state=state_strategy,
    params=params_strategy,
    coords=coords_strategy,
    seed=seeds,
)
@settings(max_examples=150, deadline=None)
def test_amber_mdin_roundtrip(state, params, coords, seed):
    adapter = AmberAdapter()
    sb = Sandbox()
    adapter.write_input(sb, "f", coords, state, params, seed)
    parsed_params, parsed_state, parsed_seed = adapter._parse_mdin(sb, "f")
    assert parsed_params.n_steps == params.n_steps
    assert parsed_seed == seed
    assert parsed_state.temperature == pytest.approx(
        state.temperature, abs=1e-5
    )
    assert parsed_state.salt_molar == pytest.approx(
        state.salt_molar, abs=1e-5
    )
    assert len(parsed_state.restraints) == len(state.restraints)
    for orig, back in zip(state.restraints, parsed_state.restraints):
        assert back.angle == orig.angle
        assert back.center_deg == pytest.approx(orig.center_deg, abs=0.1)
        assert back.k == pytest.approx(orig.k, abs=1e-4)
    back_coords = adapter._read_coords(sb, "f.inpcrd")
    assert np.allclose(back_coords, coords, atol=1e-6)


@given(
    state=state_strategy.filter(lambda s: s.salt_molar == 0.0),
    params=params_strategy,
    coords=coords_strategy,
    seed=seeds,
)
@settings(max_examples=150, deadline=None)
def test_namd_conf_roundtrip(state, params, coords, seed):
    adapter = NAMDAdapter()
    sb = Sandbox()
    adapter.write_input(sb, "f", coords, state, params, seed)
    parsed_params, parsed_state, parsed_seed = adapter._parse_conf(sb, "f")
    assert parsed_params.n_steps == params.n_steps
    assert parsed_seed == seed
    assert parsed_state.temperature == pytest.approx(
        state.temperature, abs=1e-5
    )
    assert len(parsed_state.restraints) == len(state.restraints)
    for orig, back in zip(state.restraints, parsed_state.restraints):
        assert back.angle == orig.angle
        assert back.center_deg == pytest.approx(orig.center_deg, abs=0.1)


@given(
    coords=coords_strategy,
    salts=st.lists(
        st.floats(min_value=0.0, max_value=5.0).map(lambda x: round(x, 3)),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=80, deadline=None)
def test_amber_groupfile_energies_match_direct_evaluation(coords, salts):
    adapter = AmberAdapter()
    sb = Sandbox()
    states = [ThermodynamicState(salt_molar=c) for c in salts]
    adapter.write_groupfile(sb, "g", coords, states)
    energies = adapter.run_single_point_group(sb, "g")
    expected = [
        adapter.toymd.single_point_energy(coords, s) for s in states
    ]
    assert np.allclose(energies, expected, atol=1e-4)
    # and the staged row parses back identically
    row = adapter.read_energy_row(sb, "g")
    assert np.allclose(row, energies, atol=1e-6)


@given(
    state=state_strategy,
    seed=seeds,
)
@settings(max_examples=50, deadline=None)
def test_amber_info_file_reports_run_energies(state, seed):
    adapter = AmberAdapter()
    sb = Sandbox()
    coords = np.radians([-63.0, -42.0])
    adapter.write_input(
        sb, "r", coords, state, MDParams(n_steps=5, sample_stride=1), seed
    )
    result = adapter.run_md(sb, "r")
    info = adapter.read_info(sb, "r")
    assert info["potential_energy"] == pytest.approx(
        result.potential_energy, abs=0.01
    )
    assert info["restraint_energy"] == pytest.approx(
        result.restraint_energy, abs=0.01
    )

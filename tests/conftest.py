"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import (
    DimensionSpec,
    PatternSpec,
    ResourceSpec,
    SimulationConfig,
)
from repro.md import deterministic_model
from repro.pilot import EventQueue, Session


@pytest.fixture
def clock():
    """A fresh virtual clock."""
    return EventQueue()


@pytest.fixture
def session():
    """A fresh simulation session."""
    with Session() as s:
        yield s


@pytest.fixture
def rng():
    """A seeded NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def quiet_perf():
    """Performance model without jitter (exact arithmetic)."""
    return deterministic_model()


def small_tremd_config(**overrides) -> SimulationConfig:
    """A fast 1D T-REMD config used across core tests."""
    defaults = dict(
        title="test-tremd",
        dimensions=[DimensionSpec("temperature", 4, 273.0, 373.0)],
        resource=ResourceSpec("supermic", cores=4),
        n_cycles=2,
        steps_per_cycle=6000,
        numeric_steps=20,
        sample_stride=5,
        seed=7,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture
def tremd_config():
    """Default small T-REMD configuration."""
    return small_tremd_config()

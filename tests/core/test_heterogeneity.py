"""Tests for heterogeneous replica performance (paper Sec. 2.1)."""

import pytest

from repro.core import RepEx
from repro.core.config import (
    ConfigError,
    DimensionSpec,
    PatternSpec,
    ResourceSpec,
)

from tests.conftest import small_tremd_config


def het_config(sigma, **over):
    defaults = dict(
        dimensions=[DimensionSpec("temperature", 8, 273.0, 373.0)],
        resource=ResourceSpec("supermic", cores=8),
        replica_heterogeneity=sigma,
        n_cycles=2,
    )
    defaults.update(over)
    return small_tremd_config(**defaults)


class TestReplicaSpeed:
    def test_homogeneous_is_identity(self):
        amm = RepEx(het_config(0.0)).amm
        assert all(amm.replica_speed(rid) == 1.0 for rid in range(8))

    def test_heterogeneous_spreads(self):
        amm = RepEx(het_config(0.5)).amm
        speeds = [amm.replica_speed(rid) for rid in range(8)]
        assert max(speeds) / min(speeds) > 1.3
        assert all(s > 0 for s in speeds)

    def test_deterministic_per_seed(self):
        a = RepEx(het_config(0.5)).amm
        b = RepEx(het_config(0.5)).amm
        assert [a.replica_speed(i) for i in range(8)] == [
            b.replica_speed(i) for i in range(8)
        ]

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigError):
            het_config(-0.1)


class TestBarrierEffect:
    def test_sync_cycle_set_by_slowest_replica(self):
        homo = RepEx(het_config(0.0)).run()
        hetero = RepEx(het_config(0.6)).run()
        # the barrier waits for the slowest: cycles lengthen
        assert (
            hetero.average_cycle_time() > homo.average_cycle_time()
        )
        # and utilization drops (fast replicas idle at the barrier)
        assert hetero.utilization() < homo.utilization()

    def test_async_fifo_beats_sync_under_heterogeneity(self):
        sigma = 0.6
        sync = RepEx(het_config(sigma, n_cycles=3)).run()
        fifo = RepEx(
            het_config(
                sigma,
                n_cycles=3,
                pattern=PatternSpec(
                    kind="asynchronous",
                    window_seconds=1e6,
                    fifo_count=4,
                ),
            )
        ).run()
        assert fifo.utilization() > sync.utilization()

    def test_sync_beats_window_async_when_homogeneous(self):
        """Fig. 13's regime: with equal replicas the time-window criterion
        wastes pool-wait time and the synchronous pattern wins.  (The FIFO
        criterion can tie or beat sync at small scale, which is exactly
        the paper's point about better transition criteria.)"""
        sync = RepEx(het_config(0.0, n_cycles=3)).run()
        window = RepEx(
            het_config(
                0.0,
                n_cycles=3,
                pattern=PatternSpec(
                    kind="asynchronous", window_seconds=60.0
                ),
            )
        ).run()
        assert sync.utilization() > window.utilization()

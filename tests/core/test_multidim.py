"""Tests for M-REMD scheduling and grouping."""

import numpy as np
import pytest

from repro.core.exchange.multidim import (
    DimensionSchedule,
    exchange_groups,
    lattice_size,
)
from repro.core.exchange.salt import SaltDimension
from repro.core.exchange.temperature import TemperatureDimension
from repro.core.exchange.umbrella import UmbrellaDimension
from repro.core.replica import Replica


def tsu_dims():
    return [
        TemperatureDimension.geometric(273.0, 373.0, 3),
        SaltDimension.linear(0.0, 1.0, 4),
        UmbrellaDimension.uniform(2, angle="phi"),
    ]


def full_lattice(dims):
    import itertools

    reps = []
    ranges = [range(d.n_windows) for d in dims]
    for rid, combo in enumerate(itertools.product(*ranges)):
        reps.append(
            Replica(
                rid=rid,
                coords=np.zeros(2),
                param_indices={
                    d.name: i for d, i in zip(dims, combo)
                },
            )
        )
    return reps


class TestDimensionSchedule:
    def test_round_robin(self):
        sched = DimensionSchedule(tsu_dims())
        assert sched.active(0).code == "T"
        assert sched.active(1).code == "S"
        assert sched.active(2).code == "U"
        assert sched.active(3).code == "T"

    def test_type_string(self):
        assert DimensionSchedule(tsu_dims()).type_string == "TSU"

    def test_tuu_ordering(self):
        dims = [
            TemperatureDimension.geometric(273.0, 373.0, 2),
            UmbrellaDimension.uniform(2, angle="phi"),
            UmbrellaDimension.uniform(2, angle="psi"),
        ]
        assert DimensionSchedule(dims).type_string == "TUU"

    def test_by_name(self):
        sched = DimensionSchedule(tsu_dims())
        assert sched.by_name("salt").code == "S"
        with pytest.raises(KeyError):
            sched.by_name("ph")

    def test_duplicate_names_rejected(self):
        d = TemperatureDimension.geometric(273.0, 373.0, 2)
        d2 = TemperatureDimension.geometric(273.0, 373.0, 2)
        with pytest.raises(ValueError, match="duplicate"):
            DimensionSchedule([d, d2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DimensionSchedule([])

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            DimensionSchedule(tsu_dims()).active(-1)


class TestExchangeGroups:
    def test_group_count_and_size(self):
        dims = tsu_dims()
        reps = full_lattice(dims)
        assert len(reps) == lattice_size(dims) == 3 * 4 * 2

        groups = exchange_groups(reps, dims[1])  # along salt
        assert len(groups) == 3 * 2  # T x U combinations
        assert all(len(g) == 4 for g in groups)

    def test_groups_sorted_by_active_window(self):
        dims = tsu_dims()
        reps = full_lattice(dims)
        for g in exchange_groups(reps, dims[0]):
            windows = [r.window("temperature") for r in g]
            assert windows == sorted(windows)

    def test_groups_homogeneous_in_other_dims(self):
        dims = tsu_dims()
        reps = full_lattice(dims)
        for g in exchange_groups(reps, dims[2]):
            keys = {r.group_key("umbrella_phi") for r in g}
            assert len(keys) == 1

    def test_1d_single_group(self):
        dims = [TemperatureDimension.geometric(273.0, 373.0, 5)]
        reps = full_lattice(dims)
        groups = exchange_groups(reps, dims[0])
        assert len(groups) == 1
        assert len(groups[0]) == 5

    def test_partial_population(self):
        """Groups handle missing lattice points (failed/retired replicas)."""
        dims = tsu_dims()
        reps = full_lattice(dims)[:-3]
        groups = exchange_groups(reps, dims[1])
        assert sum(len(g) for g in groups) == len(reps)

"""Tests for the configuration layer."""

import json

import pytest

from repro.core.config import (
    ConfigError,
    DimensionSpec,
    EngineSpec,
    FailureSpec,
    PatternSpec,
    ResourceSpec,
    SimulationConfig,
    WatchdogSpec,
)


def minimal(**overrides):
    defaults = dict(
        dimensions=[DimensionSpec("temperature", 4, 273.0, 373.0)],
        resource=ResourceSpec("supermic", cores=8),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestDimensionSpec:
    def test_kind_validated(self):
        with pytest.raises(ConfigError, match="kind"):
            DimensionSpec("pressure", 4, 0.0, 1.0)

    def test_windows_validated(self):
        with pytest.raises(ConfigError):
            DimensionSpec("temperature", 0, 273.0, 373.0)

    def test_range_validated(self):
        with pytest.raises(ConfigError):
            DimensionSpec("temperature", 4, 373.0, 273.0)

    def test_build_temperature(self):
        d = DimensionSpec("temperature", 6, 273.0, 373.0).build()
        assert d.code == "T"
        assert d.n_windows == 6

    def test_build_umbrella(self):
        d = DimensionSpec(
            "umbrella", 8, 0.0, 360.0, angle="psi", force_constant=0.01
        ).build()
        assert d.code == "U"
        assert d.angle == "psi"
        assert d.force_constant == 0.01

    def test_build_salt(self):
        assert DimensionSpec("salt", 4, 0.0, 1.0).build().code == "S"

    def test_build_ph(self):
        d = DimensionSpec("ph", 4, 4.0, 9.0, pka=7.0).build()
        assert d.code == "H"
        assert d.pka == 7.0


class TestSubSpecs:
    def test_resource_cores_positive(self):
        with pytest.raises(ConfigError):
            ResourceSpec(cores=0)

    def test_pattern_kind_validated(self):
        with pytest.raises(ConfigError):
            PatternSpec(kind="turbo")

    def test_pattern_window_positive(self):
        with pytest.raises(ConfigError):
            PatternSpec(kind="asynchronous", window_seconds=0.0)

    def test_fifo_count_validated(self):
        with pytest.raises(ConfigError):
            PatternSpec(kind="asynchronous", fifo_count=1)

    def test_failure_probability_bounds(self):
        with pytest.raises(ConfigError):
            FailureSpec(probability=1.5)

    def test_failure_policy_validated(self):
        with pytest.raises(ConfigError):
            FailureSpec(policy="pray")


class TestGraySpecs:
    def test_slow_nodes_entry_shape(self):
        for bad in ([[0]], [[0, 2.0, 3.0]], [[-1, 2.0]], [[0, 1.0]], [[0, 0.5]]):
            with pytest.raises(ConfigError, match="slow_nodes"):
                FailureSpec(slow_nodes=bad)
        FailureSpec(slow_nodes=[[0, 2.0], [3, 1.5]])  # valid

    def test_random_slowdowns_need_a_real_factor(self):
        with pytest.raises(ConfigError, match="slow_factor"):
            FailureSpec(slow_node_probability=0.2, slow_factor=1.0)
        FailureSpec(slow_node_probability=0.2, slow_factor=3.0)

    def test_hang_probability_bounds(self):
        with pytest.raises(ConfigError, match="hang_probability"):
            FailureSpec(hang_probability=1.5)

    def test_hangs_require_the_watchdog(self):
        with pytest.raises(ConfigError, match="deadlock"):
            minimal(failure=FailureSpec(hang_probability=0.1))
        minimal(
            failure=FailureSpec(hang_probability=0.1),
            watchdog=WatchdogSpec(enabled=True),
        )

    def test_watchdog_factor_bounds(self):
        with pytest.raises(ConfigError, match="deadline_factor"):
            WatchdogSpec(deadline_factor=1.0)
        with pytest.raises(ConfigError, match="straggler_factor"):
            WatchdogSpec(straggler_factor=1.0)
        with pytest.raises(ConfigError, match="backoff_cap_s"):
            WatchdogSpec(backoff_base_s=10.0, backoff_cap_s=5.0)
        with pytest.raises(ConfigError, match="backoff_jitter"):
            WatchdogSpec(backoff_jitter=1.5)

    def test_speculation_requires_enabled_watchdog(self):
        with pytest.raises(ConfigError, match="enabled"):
            WatchdogSpec(speculative=True)

    def test_barrier_deadline_sync_mode_i_only(self):
        with pytest.raises(ConfigError, match="barrier_deadline_s"):
            PatternSpec(kind="synchronous", barrier_deadline_s=0.0)
        with pytest.raises(ConfigError, match="asynchronous"):
            PatternSpec(kind="asynchronous", barrier_deadline_s=60.0)
        with pytest.raises(ConfigError, match="mode I"):
            minimal(
                pattern=PatternSpec(
                    kind="synchronous", barrier_deadline_s=60.0
                ),
                resource=ResourceSpec("supermic", cores=2),
            )

    def test_gray_specs_roundtrip_through_dict(self):
        cfg = minimal(
            pattern=PatternSpec(kind="synchronous", barrier_deadline_s=60.0),
            failure=FailureSpec(
                policy="continue", slow_nodes=[[0, 4.0]], hang_probability=0.1
            ),
            watchdog=WatchdogSpec(
                enabled=True, deadline_factor=6.0, speculative=True
            ),
        )
        back = SimulationConfig.from_dict(cfg.to_dict())
        assert back.pattern.barrier_deadline_s == 60.0
        assert back.failure.slow_nodes == [[0, 4.0]]
        assert back.watchdog == cfg.watchdog


class TestSimulationConfig:
    def test_n_replicas_is_lattice_product(self):
        cfg = minimal(
            dimensions=[
                DimensionSpec("temperature", 6, 273.0, 373.0),
                DimensionSpec("umbrella", 8, 0.0, 360.0, angle="phi"),
                DimensionSpec("umbrella", 8, 0.0, 360.0, angle="psi"),
            ],
            resource=ResourceSpec("stampede", cores=400),
        )
        assert cfg.n_replicas == 6 * 8 * 8 == 384  # the paper's validation

    def test_type_string(self):
        cfg = minimal(
            dimensions=[
                DimensionSpec("temperature", 2, 273.0, 373.0),
                DimensionSpec("salt", 2, 0.0, 1.0),
                DimensionSpec("umbrella", 2, 0.0, 360.0),
            ],
            resource=ResourceSpec("stampede", cores=8),
        )
        assert cfg.type_string == "TSU"

    def test_auto_mode_resolution(self):
        assert minimal().effective_mode == "I"  # 4 replicas, 8 cores
        cfg = minimal(resource=ResourceSpec("supermic", cores=2))
        assert cfg.effective_mode == "II"

    def test_mode_i_requires_enough_cores(self):
        with pytest.raises(ConfigError, match="mode I"):
            minimal(
                execution_mode="I",
                resource=ResourceSpec("supermic", cores=2),
            )

    def test_numeric_steps_default(self):
        cfg = minimal(steps_per_cycle=6000)
        assert cfg.effective_numeric_steps == 6000
        cfg = minimal(steps_per_cycle=6000, numeric_steps=50)
        assert cfg.effective_numeric_steps == 50

    def test_requires_dimensions(self):
        with pytest.raises(ConfigError, match="dimension"):
            SimulationConfig(dimensions=[])

    def test_multicore_workload_accounting(self):
        cfg = minimal(
            cores_per_replica=4, resource=ResourceSpec("supermic", cores=8)
        )
        assert cfg.effective_mode == "II"  # 4 replicas x 4 cores > 8


class TestSerialization:
    def test_dict_roundtrip(self):
        cfg = minimal(
            n_cycles=7,
            pattern=PatternSpec(kind="asynchronous", window_seconds=30.0),
            failure=FailureSpec(probability=0.1, policy="relaunch"),
        )
        cfg2 = SimulationConfig.from_dict(cfg.to_dict())
        assert cfg2.n_cycles == 7
        assert cfg2.pattern.kind == "asynchronous"
        assert cfg2.failure.policy == "relaunch"
        assert cfg2.n_replicas == cfg.n_replicas

    def test_json_roundtrip(self):
        cfg = minimal()
        text = cfg.to_json()
        cfg2 = SimulationConfig.from_json(text)
        assert cfg2.to_dict() == cfg.to_dict()

    def test_unknown_keys_rejected(self):
        data = minimal().to_dict()
        data["n_cylces"] = 4  # typo
        with pytest.raises(ConfigError, match="unknown configuration keys"):
            SimulationConfig.from_dict(data)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError, match="invalid JSON"):
            SimulationConfig.from_json("{nope")

    def test_non_object_json_rejected(self):
        with pytest.raises(ConfigError, match="object"):
            SimulationConfig.from_json("[1,2]")

    def test_bad_section_type_rejected(self):
        data = minimal().to_dict()
        data["engine"] = "amber"
        with pytest.raises(ConfigError, match="mapping"):
            SimulationConfig.from_dict(data)

    def test_bad_dimension_key_rejected(self):
        data = minimal().to_dict()
        data["dimensions"][0]["flavor"] = "spicy"
        with pytest.raises(ConfigError, match="bad dimension"):
            SimulationConfig.from_dict(data)


class TestBuildDimensions:
    def test_duplicate_names_disambiguated(self):
        cfg = minimal(
            dimensions=[
                DimensionSpec("umbrella", 2, 0.0, 360.0, angle="phi"),
                DimensionSpec("umbrella", 2, 0.0, 360.0, angle="phi"),
            ]
        )
        dims = cfg.build_dimensions()
        assert dims[0].name != dims[1].name

    def test_tuu_names_distinct(self):
        cfg = minimal(
            dimensions=[
                DimensionSpec("temperature", 2, 273.0, 373.0),
                DimensionSpec("umbrella", 2, 0.0, 360.0, angle="phi"),
                DimensionSpec("umbrella", 2, 0.0, 360.0, angle="psi"),
            ],
            resource=ResourceSpec("supermic", cores=8),
        )
        names = [d.name for d in cfg.build_dimensions()]
        assert len(set(names)) == 3

"""Tests for the asynchronous EMM (barrier-free pattern)."""

import pytest

from repro.core import RepEx
from repro.core.config import (
    DimensionSpec,
    FailureSpec,
    PatternSpec,
    ResourceSpec,
)

from tests.conftest import small_tremd_config


def async_config(**over):
    defaults = dict(
        pattern=PatternSpec(kind="asynchronous", window_seconds=60.0),
        n_cycles=3,
    )
    defaults.update(over)
    return small_tremd_config(**defaults)


class TestAsyncRun:
    def test_every_replica_completes_all_cycles(self):
        res = RepEx(async_config()).run()
        for rep in res.replicas:
            assert len(rep.history) == 3

    def test_exchange_sweeps_happen(self):
        res = RepEx(async_config()).run()
        assert res.exchange_stats["temperature"].attempted > 0
        assert len(res.cycle_timings) >= 1

    def test_window_multiset_conserved(self):
        res = RepEx(async_config(n_cycles=5)).run()
        assert sorted(r.window("temperature") for r in res.replicas) == [
            0, 1, 2, 3,
        ]

    def test_lower_utilization_than_sync(self):
        """Fig. 13: sync utilization exceeds async by ~10%."""
        a = RepEx(async_config(n_cycles=4)).run()
        s = RepEx(small_tremd_config(n_cycles=4)).run()
        assert a.utilization() < s.utilization()
        gap = s.utilization() - a.utilization()
        assert 0.01 < gap < 0.35

    def test_deterministic(self):
        u1 = RepEx(async_config()).run().utilization()
        u2 = RepEx(async_config()).run().utilization()
        assert u1 == pytest.approx(u2)

    def test_pattern_recorded(self):
        res = RepEx(async_config()).run()
        assert res.pattern == "asynchronous"


class TestFIFOCriterion:
    def test_fifo_triggers_on_count(self):
        cfg = async_config(
            pattern=PatternSpec(
                kind="asynchronous", window_seconds=1e6, fifo_count=2
            )
        )
        res = RepEx(cfg).run()
        for rep in res.replicas:
            assert len(rep.history) == 3
        assert res.exchange_stats["temperature"].attempted > 0

    def test_fifo_better_utilization_than_window(self):
        """The paper expects 'significantly better utilization results' for
        non-time-window criteria."""
        fifo = RepEx(
            async_config(
                pattern=PatternSpec(
                    kind="asynchronous", window_seconds=1e6, fifo_count=4
                ),
                n_cycles=4,
            )
        ).run()
        window = RepEx(
            async_config(
                pattern=PatternSpec(
                    kind="asynchronous", window_seconds=50.0
                ),
                n_cycles=4,
            )
        ).run()
        assert fifo.utilization() > window.utilization()


class TestAsyncFaults:
    def test_continue_policy(self):
        cfg = async_config(
            failure=FailureSpec(probability=0.3, policy="continue"),
            numeric_steps=10,
        )
        res = RepEx(cfg).run()
        assert res.n_failures > 0
        for rep in res.replicas:
            assert len(rep.history) == 3

    def test_relaunch_policy(self):
        cfg = async_config(
            failure=FailureSpec(
                probability=0.3, policy="relaunch", max_relaunches=10
            ),
            numeric_steps=10,
        )
        res = RepEx(cfg).run()
        assert res.n_relaunches > 0
        for rep in res.replicas:
            assert len(rep.history) == 3
            assert not any(rec.failed for rec in rep.history)


class TestAsyncSREMDUnsupported:
    def test_raises_clearly(self):
        cfg = async_config(
            dimensions=[DimensionSpec("salt", 4, 0.0, 1.0)],
            resource=ResourceSpec("supermic", cores=4),
        )
        with pytest.raises(NotImplementedError, match="asynchronous S-REMD"):
            RepEx(cfg).run()

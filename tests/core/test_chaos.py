"""Tests for the chaos harness (scenario matrix + report)."""

import pytest

from repro.core.chaos import (
    ChaosOutcome,
    builtin_scenarios,
    render_report,
    run_matrix,
    run_scenario,
)


class TestScenarios:
    def test_fast_matrix_is_a_subset(self):
        fast = {s.name for s in builtin_scenarios(fast=True)}
        full = {s.name for s in builtin_scenarios(fast=False)}
        assert fast < full
        assert len(fast) == 9

    def test_names_are_unique(self):
        names = [s.name for s in builtin_scenarios(fast=False)]
        assert len(names) == len(set(names))

    def test_every_scenario_injects_faults(self):
        for s in builtin_scenarios(fast=False):
            assert s.config.failure.wants_fault_domain or (
                s.config.failure.probability > 0
            ), s.name


class TestRunMatrix:
    def test_fast_matrix_all_behave_as_designed(self):
        outcomes = run_matrix(fast=True)
        assert len(outcomes) == 9
        assert all(o.ok for o in outcomes), [
            (o.name, o.error) for o in outcomes if not o.ok
        ]

    def test_outcomes_carry_fault_evidence(self):
        outcomes = run_matrix(fast=True)
        by_name = {o.name: o for o in outcomes}
        crash = by_name["node-crash/relaunch/sync"]
        assert crash.fault_counters["fault.node_crashes"] == 1
        assert crash.n_relaunches > 0
        staging = by_name["staging-flaky/continue/sync"]
        assert staging.fault_counters["staging.retries"] > 0
        retire = by_name["unit-failures/retire/sync"]
        assert retire.n_retired > 0
        slow = by_name["slow-node/speculative/sync"]
        assert slow.fault_counters["fault.slow_nodes"] == 1
        assert slow.fault_counters["watchdog.speculative_launches"] > 0
        hangs = by_name["hangs/watchdog-relaunch/sync"]
        assert hangs.fault_counters["fault.hangs"] > 0
        assert hangs.fault_counters["watchdog.relaunches"] > 0
        barrier = by_name["slow-node/barrier-deadline/sync"]
        assert barrier.fault_counters["emm.barrier_deadline_fires"] > 0
        assert barrier.fault_counters["emm.barrier_late"] > 0

    def test_scenario_death_is_data_not_crash(self):
        # an expect_failure scenario returns an outcome with the error text
        scenario = next(
            s for s in builtin_scenarios(fast=False) if s.expect_failure
        )
        outcome = run_scenario(scenario)
        assert outcome.ok
        assert not outcome.survived
        assert outcome.error


class TestResumeColumn:
    @pytest.fixture(scope="class")
    def fast_outcomes(self):
        return run_matrix(fast=True)

    def test_every_surviving_scenario_resumes_ok(self, fast_outcomes):
        for o in fast_outcomes:
            if o.survived and not o.expect_failure:
                assert o.resume == "ok", (o.name, o.resume)

    def test_both_patterns_are_covered(self, fast_outcomes):
        checked = [o.name for o in fast_outcomes if o.resume is not None]
        assert any("/sync" in name for name in checked)
        assert any("/async" in name for name in checked)

    def test_expected_failures_are_not_resume_checked(self):
        scenario = next(
            s for s in builtin_scenarios(fast=False) if s.expect_failure
        )
        outcome = run_scenario(scenario)
        assert outcome.resume is None

    def test_no_resume_skips_the_check(self):
        scenario = builtin_scenarios(fast=True)[0]
        outcome = run_scenario(scenario, resume_check=False)
        assert outcome.resume is None
        assert outcome.ok

    def test_resume_failure_fails_the_scenario(self):
        o = ChaosOutcome(
            name="x", survived=True, resume="FAIL: fingerprint differs"
        )
        assert not o.ok
        assert ChaosOutcome(name="x", survived=True, resume="ok").ok

    def test_resume_column_rendered_and_serialized(self, fast_outcomes):
        text = render_report(fast_outcomes)
        assert "resume" in text
        by_name = {o.name: o.to_dict() for o in fast_outcomes}
        assert by_name["node-crash/continue/async"]["resume"] == "ok"


class TestReport:
    def test_render_report_lists_every_scenario(self):
        outcomes = [
            ChaosOutcome(name="a/b/c", survived=True),
            ChaosOutcome(
                name="d/e/f",
                survived=False,
                expect_failure=True,
                error="SchedulerError: boom",
            ),
            ChaosOutcome(name="g/h/i", survived=False, error="dead"),
        ]
        text = render_report(outcomes)
        assert "a/b/c" in text and "d/e/f" in text and "g/h/i" in text
        assert "2/3 scenarios behaved as designed" in text
        assert "FAIL" in text  # the unexpected death is flagged

    def test_outcome_to_dict(self):
        o = ChaosOutcome(
            name="x",
            survived=True,
            n_failures=2,
            fault_counters={"fault.node_crashes": 1.0},
        )
        d = o.to_dict()
        assert d["name"] == "x"
        assert d["ok"] is True
        assert d["fault_counters"] == {"fault.node_crashes": 1.0}

    def test_ok_semantics(self):
        assert ChaosOutcome(name="x", survived=True).ok
        assert not ChaosOutcome(name="x", survived=False).ok
        assert ChaosOutcome(name="x", survived=False, expect_failure=True).ok
        assert not ChaosOutcome(name="x", survived=True, expect_failure=True).ok

"""Tests for the internal salt single-point path (future-work option)."""

import numpy as np
import pytest

from repro.core import RepEx
from repro.core.config import DimensionSpec, ResourceSpec
from repro.core.exchange.salt import SaltDimension
from repro.core.replica import Replica
from repro.md.toymd import ThermodynamicState

from tests.conftest import small_tremd_config


def salt_config(internal, n=4, **over):
    return small_tremd_config(
        dimensions=[
            DimensionSpec("salt", n, 0.0, 1.0, internal_sp=internal)
        ],
        resource=ResourceSpec("supermic", cores=n),
        **over,
    )


class TestDimensionFlag:
    def test_requires_single_point_toggles(self):
        assert SaltDimension.linear(0, 1, 4).requires_single_point
        assert not SaltDimension.linear(
            0, 1, 4, internal=True
        ).requires_single_point

    def test_internal_without_evaluator_raises(self):
        d = SaltDimension.linear(0.0, 1.0, 2, internal=True)
        r0 = Replica(rid=0, coords=np.zeros(2), param_indices={"salt": 0})
        r1 = Replica(rid=1, coords=np.zeros(2), param_indices={"salt": 1})
        states = {0: ThermodynamicState(), 1: ThermodynamicState()}
        with pytest.raises(ValueError):
            d.exchange_delta(
                r0, r1, window_i=0, window_j=1, states=states
            )

    def test_internal_with_evaluator_computes(self):
        d = SaltDimension.linear(0.0, 1.0, 2, internal=True)
        d.evaluator = lambda coords, salt: salt * 10.0  # toy energies
        r0 = Replica(rid=0, coords=np.zeros(2), param_indices={"salt": 0})
        r1 = Replica(rid=1, coords=np.ones(2), param_indices={"salt": 1})
        states = {
            0: ThermodynamicState(300.0),
            1: ThermodynamicState(300.0),
        }
        delta = d.exchange_delta(
            r0, r1, window_i=0, window_j=1, states=states
        )
        # energies depend only on salt here: all cross terms equal -> 0
        assert delta == pytest.approx(0.0)


class TestEndToEnd:
    def test_no_single_point_tasks_spawned(self):
        r = RepEx(salt_config(internal=True))
        res = r.run()
        # with no SP tasks, exchange core-seconds are tiny
        assert res.exchange_core_seconds < 20.0
        assert res.exchange_stats["salt"].attempted > 0

    def test_matches_external_path_decisions(self):
        res_int = RepEx(salt_config(internal=True)).run()
        res_ext = RepEx(salt_config(internal=False)).run()
        assert (
            res_int.exchange_stats["salt"].accepted
            == res_ext.exchange_stats["salt"].accepted
        )
        assert [r.window("salt") for r in res_int.replicas] == [
            r.window("salt") for r in res_ext.replicas
        ]

    def test_internal_exchange_billed_more_per_task(self):
        r_int = RepEx(salt_config(internal=True))
        desc = r_int.amm.exchange_task(
            r_int.amm.create_replicas(), r_int.amm.dimensions[0], 0
        )
        r_ext = RepEx(salt_config(internal=False))
        reps = r_ext.amm.create_replicas()
        desc_ext = r_ext.amm.exchange_task(
            reps, r_ext.amm.dimensions[0], 0, energy_matrix={}
        )
        assert desc.duration > desc_ext.duration

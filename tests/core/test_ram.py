"""Tests for the remote application module (exchange procedures)."""

import numpy as np
import pytest

from repro.core import ram
from repro.core.exchange.pairing import GibbsPairing, NeighborPairing
from repro.core.exchange.temperature import TemperatureDimension
from repro.core.exchange.umbrella import UmbrellaDimension
from repro.core.replica import Replica
from repro.md.amber import AmberAdapter
from repro.md.namd import NAMDAdapter
from repro.md.sandbox import Sandbox
from repro.md.toymd import MDParams, ThermodynamicState


def make_group(dim_name, energies):
    group = []
    for i, e in enumerate(energies):
        r = Replica(
            rid=i, coords=np.zeros(2), param_indices={dim_name: i}
        )
        r.last_energies = {"potential_energy": e}
        group.append(r)
    return group


class TestComputeExchange:
    def test_proposals_follow_pairing(self, rng):
        dim = TemperatureDimension.geometric(273.0, 373.0, 4)
        group = make_group("temperature", [-10.0, -9.0, -8.0, -7.0])
        states = {
            r.rid: ThermodynamicState(float(dim.value(i)))
            for i, r in enumerate(group)
        }
        proposals = ram.compute_exchange(
            dim, group, states, NeighborPairing(), cycle=0, rng=rng
        )
        assert [(p.rid_i, p.rid_j) for p in proposals] == [(0, 1), (2, 3)]
        for p in proposals:
            assert p.dimension == "temperature"

    def test_gibbs_sequential_windows(self, rng):
        """Multi-sweep pairing uses the evolving window assignment."""
        dim = TemperatureDimension.geometric(300.0, 301.0, 4)  # ~always accept
        group = make_group("temperature", [-10.0, -10.0, -10.0, -10.0])
        states = {
            r.rid: ThermodynamicState(float(dim.value(i)))
            for i, r in enumerate(group)
        }
        proposals = ram.compute_exchange(
            dim, group, states, GibbsPairing(n_sweeps=4), cycle=0, rng=rng
        )
        windows = ram.final_windows(group, dim, proposals)
        # whatever happened, the window multiset is conserved
        assert sorted(windows.values()) == [0, 1, 2, 3]

    def test_final_windows_replay(self, rng):
        dim = TemperatureDimension.geometric(273.0, 373.0, 2)
        group = make_group("temperature", [-10.0, -10.0])  # equal: accept
        states = {
            r.rid: ThermodynamicState(float(dim.value(i)))
            for i, r in enumerate(group)
        }
        proposals = ram.compute_exchange(
            dim, group, states, NeighborPairing(), cycle=0, rng=rng
        )
        assert proposals[0].accepted  # delta == 0
        windows = ram.final_windows(group, dim, proposals)
        assert windows == {0: 1, 1: 0}

    def test_empty_group(self, rng):
        dim = TemperatureDimension.geometric(273.0, 373.0, 2)
        assert (
            ram.compute_exchange(
                dim, [], {}, NeighborPairing(), cycle=0, rng=rng
            )
            == []
        )


class TestMDExecution:
    def test_execute_and_read_roundtrip(self):
        adapter = AmberAdapter()
        sb = Sandbox()
        coords = np.radians([-63.0, -42.0])
        adapter.write_input(
            sb, "m0", coords, ThermodynamicState(), MDParams(n_steps=20), 3
        )
        result = ram.execute_md(adapter, sb, "m0")
        energies, out_coords = ram.read_md_outputs(adapter, sb, "m0")
        assert energies["potential_energy"] == pytest.approx(
            result.potential_energy, abs=0.01
        )
        assert np.allclose(out_coords, result.final_coords, atol=1e-6)


class TestSinglePointGroup:
    def test_amber_supported(self):
        adapter = AmberAdapter()
        sb = Sandbox()
        states = [ThermodynamicState(salt_molar=c) for c in (0.0, 0.5)]
        row = ram.execute_single_point_group(
            adapter, sb, "sp0", np.zeros(2), states
        )
        assert row.shape == (2,)

    def test_namd_rejected(self):
        adapter = NAMDAdapter()
        sb = Sandbox()
        with pytest.raises(TypeError, match="group-file"):
            ram.execute_single_point_group(
                adapter, sb, "sp0", np.zeros(2), [ThermodynamicState()]
            )

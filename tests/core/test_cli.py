"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def config_file(tmp_path):
    cfg = {
        "title": "cli-test",
        "resource": {"name": "supermic", "cores": 4},
        "dimensions": [
            {
                "kind": "temperature",
                "n_windows": 4,
                "min_value": 273.0,
                "max_value": 373.0,
            }
        ],
        "n_cycles": 2,
        "steps_per_cycle": 6000,
        "numeric_steps": 10,
        "seed": 1,
    }
    path = tmp_path / "config.json"
    path.write_text(json.dumps(cfg))
    return path


class TestRun:
    def test_run_prints_summary(self, config_file, capsys):
        rc = main(["run", str(config_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert "average cycle time" in out
        assert "acceptance[temperature]" in out

    def test_run_writes_json_summary(self, config_file, tmp_path, capsys):
        out_path = tmp_path / "summary.json"
        rc = main(["run", str(config_file), "-o", str(out_path)])
        assert rc == 0
        summary = json.loads(out_path.read_text())
        assert summary["title"] == "cli-test"
        assert len(summary["cycles"]) == 2
        assert 0.0 < summary["utilization"] <= 1.0

    def test_run_missing_file(self, capsys):
        rc = main(["run", "/does/not/exist.json"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_run_invalid_config(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"dimensions": []}')
        rc = main(["run", str(bad)])
        assert rc == 2


@pytest.fixture
def async_config_file(tmp_path):
    cfg = {
        "title": "cli-async",
        "resource": {"name": "supermic", "cores": 4},
        "dimensions": [
            {
                "kind": "temperature",
                "n_windows": 4,
                "min_value": 273.0,
                "max_value": 373.0,
            }
        ],
        "pattern": {"kind": "asynchronous"},
        "n_cycles": 3,
        "steps_per_cycle": 6000,
        "numeric_steps": 10,
        "seed": 1,
    }
    path = tmp_path / "async.json"
    path.write_text(json.dumps(cfg))
    return path


class TestCrashResumeFlags:
    def test_crash_exits_3_with_resume_hint(
        self, async_config_file, tmp_path, capsys
    ):
        ckpt_dir = tmp_path / "ck"
        rc = main(
            [
                "run", str(async_config_file),
                "--checkpoint-every-s", "150",
                "--checkpoint-dir", str(ckpt_dir),
                "--crash-at-time", "400",
            ]
        )
        assert rc == 3
        err = capsys.readouterr().err
        assert "crashed: simulated crash at t=400s" in err
        assert f"--resume {ckpt_dir / 'latest.json'}" in err
        assert (ckpt_dir / "quiesce_0001.json").exists()

    def test_crash_without_checkpoint_says_so(
        self, async_config_file, tmp_path, capsys
    ):
        rc = main(
            [
                "run", str(async_config_file),
                "--checkpoint-every-s", "150",
                "--checkpoint-dir", str(tmp_path / "ck"),
                "--crash-at-time", "60",
            ]
        )
        assert rc == 3
        assert "nothing to resume" in capsys.readouterr().err

    def test_crash_then_resume_completes(
        self, async_config_file, tmp_path, capsys
    ):
        ckpt_dir = tmp_path / "ck"
        flags = [
            "--checkpoint-every-s", "150",
            "--checkpoint-dir", str(ckpt_dir),
        ]
        assert main(
            ["run", str(async_config_file)] + flags + [
                "--crash-at-time", "400",
            ]
        ) == 3
        capsys.readouterr()
        rc = main(
            ["run", str(async_config_file)] + flags + [
                "--resume", str(ckpt_dir / "latest.json"),
            ]
        )
        assert rc == 0
        assert "average cycle time" in capsys.readouterr().out

    def test_stop_after_checkpoint_prints_resume_hint(
        self, async_config_file, tmp_path, capsys
    ):
        rc = main(
            [
                "run", str(async_config_file),
                "--checkpoint-every-s", "150",
                "--checkpoint-dir", str(tmp_path / "ck"),
                "--stop-after-checkpoint", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "--stop-after-checkpoint" in out
        assert "resume with --resume" in out

    def test_checkpoint_keep_prunes(self, config_file, tmp_path, capsys):
        # four cycles so pruning actually has snapshots to discard
        cfg = json.loads(config_file.read_text())
        cfg["n_cycles"] = 4
        long_config = tmp_path / "long.json"
        long_config.write_text(json.dumps(cfg))
        ckpt_dir = tmp_path / "ck"
        rc = main(
            [
                "run", str(long_config),
                "--checkpoint-every", "1",
                "--checkpoint-dir", str(ckpt_dir),
                "--checkpoint-keep", "1",
            ]
        )
        assert rc == 0
        numbered = [p.name for p in ckpt_dir.glob("cycle_*.json")]
        assert numbered == ["cycle_0003.json"]
        assert (ckpt_dir / "latest.json").exists()

    def test_quiesce_flags_rejected_for_sync(self, config_file, capsys):
        rc = main(
            ["run", str(config_file), "--checkpoint-every-s", "100"]
        )
        assert rc == 2
        assert "quiesce" in capsys.readouterr().err


class TestCheck:
    def test_valid_config(self, config_file, capsys):
        rc = main(["check", str(config_file)])
        assert rc == 0
        assert "ok:" in capsys.readouterr().out

    def test_invalid_config(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"n_cylces": 3}')
        rc = main(["check", str(bad)])
        assert rc == 2
        assert "invalid" in capsys.readouterr().err


class TestInfoCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "RepEx" in out
        assert "CHARMM" in out

    def test_engines(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "amber" in out
        assert "namd" in out


class TestObsCommands:
    @pytest.fixture(scope="class")
    def manifest_file(self, tmp_path_factory):
        from repro.core import RepEx
        from tests.conftest import small_tremd_config

        result = RepEx(small_tremd_config()).run()
        path = tmp_path_factory.mktemp("obs") / "run.jsonl"
        result.manifest.dump(path)
        return path

    def test_export_chrome_validates(self, manifest_file, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        assert main(
            ["obs", "export", str(manifest_file), "-o", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "validate", str(trace_path)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_export_openmetrics_to_stdout(self, manifest_file, capsys):
        rc = main(
            ["obs", "export", str(manifest_file), "--format", "openmetrics"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        assert "emm_cycles_total" in out

    def test_validate_rejects_non_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["obs", "validate", str(bad)]) == 2
        assert "invalid" in capsys.readouterr().err

    def test_critical_path_report(self, manifest_file, capsys):
        assert main(["obs", "critical-path", str(manifest_file)]) == 0
        out = capsys.readouterr().out
        assert "Critical path per cycle" in out
        assert "Phase decomposition" in out

    def test_diff_self_is_identical(self, manifest_file, capsys):
        rc = main(["obs", "diff", str(manifest_file), str(manifest_file)])
        assert rc == 0
        assert "observationally identical" in capsys.readouterr().out

    def test_truncated_manifest_degrades_gracefully(
        self, manifest_file, tmp_path, capsys
    ):
        """A streamed manifest cut mid-record still summarizes, warns on
        stderr, and exits 0."""
        lines = manifest_file.read_text().splitlines(True)
        cut = tmp_path / "truncated.jsonl"
        cut.write_text("".join(lines[:-2]) + lines[-2][: len(lines[-2]) // 2])
        for command in (["obs", "summary"], ["obs", "timeline", "-n", "5"]):
            assert main(command + [str(cut)]) == 0
            captured = capsys.readouterr()
            assert "truncated or invalid JSON dropped" in captured.err
            assert captured.out  # recovered content still prints

    def test_strict_refuses_recovered_manifest(
        self, manifest_file, tmp_path, capsys
    ):
        """``--strict`` turns lenient recovery into exit 4 on every
        obs command."""
        lines = manifest_file.read_text().splitlines(True)
        cut = tmp_path / "truncated.jsonl"
        cut.write_text("".join(lines[:-2]) + lines[-2][: len(lines[-2]) // 2])
        for command in (
            ["obs", "summary", "--strict", str(cut)],
            ["obs", "timeline", "--strict", str(cut)],
            ["obs", "export", "--strict", str(cut)],
            ["obs", "critical-path", "--strict", str(cut)],
            ["obs", "diff", "--strict", str(manifest_file), str(cut)],
        ):
            assert main(command) == 4, command
            err = capsys.readouterr().err
            assert "refusing under --strict" in err
            assert str(cut) in err

    def test_strict_on_clean_manifest_is_silent(self, manifest_file, capsys):
        assert main(["obs", "summary", "--strict", str(manifest_file)]) == 0
        captured = capsys.readouterr()
        assert "refusing" not in captured.err
        assert captured.out


class TestBenchAttribute:
    @pytest.fixture
    def result_pair(self, tmp_path):
        """Synthetic bench results with one regressing scenario."""
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(
            json.dumps({"_meta": {"schema": 1},
                        "tremd_sync": {"events_per_s": 1000.0}})
        )
        new.write_text(
            json.dumps({"_meta": {"schema": 1},
                        "tremd_sync": {"events_per_s": 400.0}})
        )
        return old, new

    def manifest_dirs(self, tmp_path):
        """Two trace dirs whose manifests differ (2 vs 3 cycles)."""
        from repro.core import RepEx
        from tests.conftest import small_tremd_config

        dirs = []
        for label, n_cycles in (("old", 2), ("new", 3)):
            d = tmp_path / label
            d.mkdir()
            result = RepEx(small_tremd_config(n_cycles=n_cycles)).run()
            result.manifest.dump(d / "tremd_sync.manifest.jsonl")
            dirs.append(d)
        return dirs

    def test_regression_gets_phase_attribution(
        self, result_pair, tmp_path, capsys
    ):
        old, new = result_pair
        old_dir, new_dir = self.manifest_dirs(tmp_path)
        rc = main(
            ["bench", "--compare", str(old), str(new),
             "--attribute", str(old_dir), str(new_dir)]
        )
        assert rc == 1  # the regression still fails the gate
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "phase.md" in out
        assert "wallclock_s" in out

    def test_missing_manifest_degrades_to_hint(
        self, result_pair, tmp_path, capsys
    ):
        old, new = result_pair
        rc = main(
            ["bench", "--compare", str(old), str(new),
             "--attribute", str(tmp_path / "a"), str(tmp_path / "b")]
        )
        assert rc == 1
        assert "attribution unavailable" in capsys.readouterr().out

    def test_no_attribution_without_flag(self, result_pair, capsys):
        old, new = result_pair
        rc = main(["bench", "--compare", str(old), str(new)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "phase.md" not in out


class TestChaosResumeFlag:
    def test_no_resume_skips_the_column(self, capsys):
        rc = main(["chaos", "--fast", "--no-resume"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resume" in out  # the column renders...
        assert "Chaos matrix" in out

    def test_resume_verdicts_in_json_report(self, tmp_path, capsys):
        report = tmp_path / "chaos.json"
        rc = main(["chaos", "--fast", "-o", str(report)])
        assert rc == 0
        doc = json.loads(report.read_text())
        verdicts = {o["name"]: o["resume"] for o in doc}
        assert all(v == "ok" for v in verdicts.values()), verdicts


class TestExampleConfigs:
    @pytest.mark.parametrize(
        "name", ["tremd.json", "tsu_mode2.json", "async_namd.json"]
    )
    def test_shipped_configs_are_valid(self, name):
        from pathlib import Path

        path = Path(__file__).parents[2] / "examples" / "configs" / name
        assert main(["check", str(path)]) == 0


def campaign_spec(**overrides):
    base_session = {
        "dimensions": [
            {
                "kind": "temperature",
                "n_windows": 2,
                "min_value": 300.0,
                "max_value": 320.0,
            }
        ],
        "resource": {"name": "small-cluster", "cores": 4},
        "n_cycles": 1,
        "steps_per_cycle": 500,
        "numeric_steps": 1,
        "sample_stride": 0,
    }
    spec = {
        "title": "cli-campaign",
        "seed": 5,
        "datacenter": {"nodes": 2, "cores_per_node": 8},
        "tenants": [
            {
                "name": "alice",
                "base": base_session,
                "grid": {
                    "pattern.kind": ["synchronous", "asynchronous"],
                    "n_cycles": [1, 2],
                },
            },
            {"name": "bob", "base": base_session},
        ],
    }
    spec.update(overrides)
    return spec


@pytest.fixture
def campaign_file(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(campaign_spec()))
    return path


class TestCampaign:
    def test_dry_run_prints_the_expanded_grid(self, campaign_file, capsys):
        rc = main(["campaign", str(campaign_file), "--dry-run"])
        assert rc == 0
        out = capsys.readouterr().out
        # 2 patterns x 2 cycle counts for alice, plus bob's single session
        assert "5 sessions across 2 tenants" in out
        for uid in ("alice-0000", "alice-0003", "bob-0000"):
            assert uid in out
        assert "pattern=asynchronous" in out
        assert "pattern=synchronous" in out

    def test_run_prints_per_tenant_accounting(self, campaign_file, capsys):
        rc = main(["campaign", str(campaign_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Per-tenant accounting" in out
        assert "alice" in out and "bob" in out
        assert "utilization" in out

    def test_admission_rejection_exits_4(self, tmp_path, capsys):
        # a one-node datacenter with a one-deep queue cannot admit five
        # single-pilot sessions submitted together
        spec = campaign_spec(
            datacenter={"nodes": 1, "cores_per_node": 4},
            queue_limit=1,
        )
        path = tmp_path / "tight.json"
        path.write_text(json.dumps(spec))
        rc = main(["campaign", str(path)])
        assert rc == 4
        assert "rejected" in capsys.readouterr().err

    def test_metrics_out_parses_as_openmetrics(
        self, campaign_file, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.txt"
        rc = main(
            ["campaign", str(campaign_file), "--metrics-out",
             str(metrics_path)]
        )
        assert rc == 0
        text = metrics_path.read_text()
        assert text.endswith("# EOF\n")
        # every sample line is `name{labels} value` with a parseable
        # float value; every series carries a tenant label
        import re

        sample_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$"
        )
        samples = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert samples
        for line in samples:
            assert sample_re.match(line), f"bad sample line: {line!r}"
            float(line.rsplit(" ", 1)[1])
        assert 'tenant="alice"' in text and 'tenant="bob"' in text

    def test_out_writes_report_and_manifests(
        self, campaign_file, tmp_path, capsys
    ):
        out_dir = tmp_path / "campaign_out"
        rc = main(["campaign", str(campaign_file), "--out", str(out_dir)])
        assert rc == 0
        report = json.loads((out_dir / "report.json").read_text())
        assert report["title"] == "cli-campaign"
        assert {s["tenant"] for s in report["sessions"]} == {"alice", "bob"}
        manifests = sorted(p.name for p in out_dir.rglob("*.jsonl"))
        assert "alice-0000.jsonl" in manifests
        assert "bob-0000.jsonl" in manifests

    def test_shard_mode_output_is_bit_identical(
        self, campaign_file, tmp_path, capsys
    ):
        ref_dir, shard_dir = tmp_path / "ref", tmp_path / "shard"
        assert main(["campaign", str(campaign_file), "--out", str(ref_dir)]) == 0
        assert main(
            ["campaign", str(campaign_file), "--shard", "1",
             "--out", str(shard_dir)]
        ) == 0
        assert "precomputed 5 session shard(s)" in capsys.readouterr().err
        assert (shard_dir / "report.json").read_bytes() == (
            ref_dir / "report.json"
        ).read_bytes()
        ref = {
            p.relative_to(ref_dir): p.read_bytes()
            for p in sorted(ref_dir.rglob("*.jsonl"))
        }
        shard = {
            p.relative_to(shard_dir): p.read_bytes()
            for p in sorted(shard_dir.rglob("*.jsonl"))
        }
        assert shard == ref

    def test_negative_shard_count_exits_2(self, campaign_file, capsys):
        rc = main(["campaign", str(campaign_file), "--shard", "-1"])
        assert rc == 2
        assert "processes" in capsys.readouterr().err

    def test_json_flag_prints_full_report(self, campaign_file, capsys):
        rc = main(["campaign", str(campaign_file), "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        doc = json.loads(payload)
        assert doc["title"] == "cli-campaign"
        assert len(doc["sessions"]) == 5

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"tenants": [], "typo": 1}')
        rc = main(["campaign", str(path)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        rc = main(["campaign", "/does/not/exist.json"])
        assert rc == 2

    def test_shipped_campaign_spec_dry_runs(self, capsys):
        from pathlib import Path

        path = (
            Path(__file__).parents[2] / "examples" / "configs"
            / "campaign.json"
        )
        assert main(["campaign", str(path), "--dry-run"]) == 0

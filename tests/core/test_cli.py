"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def config_file(tmp_path):
    cfg = {
        "title": "cli-test",
        "resource": {"name": "supermic", "cores": 4},
        "dimensions": [
            {
                "kind": "temperature",
                "n_windows": 4,
                "min_value": 273.0,
                "max_value": 373.0,
            }
        ],
        "n_cycles": 2,
        "steps_per_cycle": 6000,
        "numeric_steps": 10,
        "seed": 1,
    }
    path = tmp_path / "config.json"
    path.write_text(json.dumps(cfg))
    return path


class TestRun:
    def test_run_prints_summary(self, config_file, capsys):
        rc = main(["run", str(config_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert "average cycle time" in out
        assert "acceptance[temperature]" in out

    def test_run_writes_json_summary(self, config_file, tmp_path, capsys):
        out_path = tmp_path / "summary.json"
        rc = main(["run", str(config_file), "-o", str(out_path)])
        assert rc == 0
        summary = json.loads(out_path.read_text())
        assert summary["title"] == "cli-test"
        assert len(summary["cycles"]) == 2
        assert 0.0 < summary["utilization"] <= 1.0

    def test_run_missing_file(self, capsys):
        rc = main(["run", "/does/not/exist.json"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_run_invalid_config(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"dimensions": []}')
        rc = main(["run", str(bad)])
        assert rc == 2


class TestCheck:
    def test_valid_config(self, config_file, capsys):
        rc = main(["check", str(config_file)])
        assert rc == 0
        assert "ok:" in capsys.readouterr().out

    def test_invalid_config(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"n_cylces": 3}')
        rc = main(["check", str(bad)])
        assert rc == 2
        assert "invalid" in capsys.readouterr().err


class TestInfoCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "RepEx" in out
        assert "CHARMM" in out

    def test_engines(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "amber" in out
        assert "namd" in out


class TestObsCommands:
    @pytest.fixture(scope="class")
    def manifest_file(self, tmp_path_factory):
        from repro.core import RepEx
        from tests.conftest import small_tremd_config

        result = RepEx(small_tremd_config()).run()
        path = tmp_path_factory.mktemp("obs") / "run.jsonl"
        result.manifest.dump(path)
        return path

    def test_export_chrome_validates(self, manifest_file, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        assert main(
            ["obs", "export", str(manifest_file), "-o", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "validate", str(trace_path)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_export_openmetrics_to_stdout(self, manifest_file, capsys):
        rc = main(
            ["obs", "export", str(manifest_file), "--format", "openmetrics"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        assert "emm_cycles_total" in out

    def test_validate_rejects_non_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["obs", "validate", str(bad)]) == 2
        assert "invalid" in capsys.readouterr().err

    def test_critical_path_report(self, manifest_file, capsys):
        assert main(["obs", "critical-path", str(manifest_file)]) == 0
        out = capsys.readouterr().out
        assert "Critical path per cycle" in out
        assert "Phase decomposition" in out

    def test_diff_self_is_identical(self, manifest_file, capsys):
        rc = main(["obs", "diff", str(manifest_file), str(manifest_file)])
        assert rc == 0
        assert "observationally identical" in capsys.readouterr().out

    def test_truncated_manifest_degrades_gracefully(
        self, manifest_file, tmp_path, capsys
    ):
        """A streamed manifest cut mid-record still summarizes, warns on
        stderr, and exits 0."""
        lines = manifest_file.read_text().splitlines(True)
        cut = tmp_path / "truncated.jsonl"
        cut.write_text("".join(lines[:-2]) + lines[-2][: len(lines[-2]) // 2])
        for command in (["obs", "summary"], ["obs", "timeline", "-n", "5"]):
            assert main(command + [str(cut)]) == 0
            captured = capsys.readouterr()
            assert "truncated or invalid JSON dropped" in captured.err
            assert captured.out  # recovered content still prints


class TestExampleConfigs:
    @pytest.mark.parametrize(
        "name", ["tremd.json", "tsu_mode2.json", "async_namd.json"]
    )
    def test_shipped_configs_are_valid(self, name):
        from pathlib import Path

        path = Path(__file__).parents[2] / "examples" / "configs" / name
        assert main(["check", str(path)]) == 0

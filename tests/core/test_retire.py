"""Retire policy and node-level correlated failures through both EMMs."""

import pytest

from repro.core import RepEx
from repro.core.config import FailureSpec, PatternSpec
from repro.core.config import ResourceSpec
from repro.core.replica import ReplicaStatus
from repro.obs.metrics import MetricsRegistry, using_registry
from repro.pilot.scheduler import SchedulerError
from tests.conftest import small_tremd_config


def run(config):
    with using_registry(MetricsRegistry()) as registry:
        result = RepEx(config).run()
    return result, registry


def retire_config(retire_after, pattern_kind="synchronous", **over):
    return small_tremd_config(
        failure=FailureSpec(
            probability=1.0, policy="retire", retire_after=retire_after
        ),
        pattern=PatternSpec(kind=pattern_kind),
        **over,
    )


def crash_config(policy="relaunch", node_crashes=((40.0, 0),), **over):
    """Two supermic nodes (40 cores); 5-core replicas all land on node 0."""
    failure_over = over.pop("failure_over", {})
    return small_tremd_config(
        resource=ResourceSpec("supermic", cores=40),
        cores_per_replica=5,
        failure=FailureSpec(
            policy=policy,
            node_crashes=[list(e) for e in node_crashes],
            **failure_over,
        ),
        **over,
    )


class TestRetirePolicy:
    @pytest.mark.parametrize("pattern_kind", ["synchronous", "asynchronous"])
    def test_one_relaunch_then_retired(self, pattern_kind):
        result, _ = run(retire_config(1, pattern_kind))
        assert result.n_retired == 4  # every replica poisoned, all dropped
        assert result.n_relaunches == 4  # one retry each before giving up
        assert result.n_failures == 8
        assert all(
            rep.status is ReplicaStatus.RETIRED for rep in result.replicas
        )

    @pytest.mark.parametrize("pattern_kind", ["synchronous", "asynchronous"])
    def test_zero_budget_retires_on_first_failure(self, pattern_kind):
        result, _ = run(retire_config(0, pattern_kind))
        assert result.n_retired == 4
        assert result.n_relaunches == 0
        assert result.n_failures == 4

    def test_partial_retirement_keeps_survivors_exchanging(self):
        # flaky rather than fatal: some replicas survive to exchange
        config = small_tremd_config(
            failure=FailureSpec(
                probability=0.5, policy="retire", retire_after=1
            ),
            n_cycles=3,
        )
        result, _ = run(config)
        statuses = {rep.status for rep in result.replicas}
        assert len(result.cycle_timings) == 3  # the run itself completed
        if ReplicaStatus.RETIRED in statuses:
            assert result.n_retired == sum(
                rep.status is ReplicaStatus.RETIRED for rep in result.replicas
            )


class TestNodeCrashRecovery:
    def test_sync_relaunch_lands_on_surviving_node(self):
        result, registry = run(crash_config("relaunch"))
        counters = registry.snapshot()["counters"]
        assert counters["fault.node_crashes"] == 1
        assert result.n_failures == 4  # all four replicas were co-resident
        assert result.n_relaunches == 4
        assert len(result.cycle_timings) == 2
        for rep in result.replicas:  # relaunches recovered every cycle
            assert len(rep.history) == 2

    def test_sync_continue_skips_the_lost_cycle(self):
        result, registry = run(crash_config("continue"))
        assert registry.snapshot()["counters"]["fault.units_killed"] == 4
        assert result.n_failures == 4
        assert result.n_relaunches == 0
        assert len(result.cycle_timings) == 2

    def test_sync_zero_relaunch_budget_still_completes(self):
        result, _ = run(
            crash_config("relaunch", failure_over={"max_relaunches": 0})
        )
        assert result.n_relaunches == 0
        assert len(result.cycle_timings) == 2

    def test_sync_total_capacity_loss_is_fatal(self):
        # both nodes die: nothing can ever be placed again, the run dies
        config = crash_config(
            "relaunch", node_crashes=((40.0, 0), (45.0, 1))
        )
        with pytest.raises(SchedulerError):
            run(config)

    def test_async_relaunch_after_crash(self):
        # async cycles are shorter; crash early so MD is in flight
        result, registry = run(
            crash_config(
                "relaunch",
                node_crashes=((20.0, 0),),
                pattern=PatternSpec(kind="asynchronous"),
            )
        )
        assert registry.snapshot()["counters"]["fault.node_crashes"] == 1
        assert result.n_failures >= 4
        assert result.n_relaunches >= 4

    def test_async_capacity_loss_retires_unplaceable_replicas(self):
        # stampede carves 20 cores into a 16-core and a 4-core node; losing
        # the big node leaves 4 cores: too few for any 5-core MD task (all
        # replicas retire) but enough for 1-core bookkeeping tasks
        result, _ = run(
            small_tremd_config(
                resource=ResourceSpec("stampede", cores=20),
                cores_per_replica=5,
                failure=FailureSpec(
                    policy="continue", node_crashes=[[20.0, 0]]
                ),
                pattern=PatternSpec(kind="asynchronous"),
            )
        )
        assert result.n_retired == 4
        assert all(
            rep.status is ReplicaStatus.RETIRED for rep in result.replicas
        )

    def test_fault_events_reach_the_manifest(self):
        result, _ = run(crash_config("relaunch"))
        assert result.manifest is not None
        faults = result.manifest.fault_events
        assert [e["fault"] for e in faults] == ["node_crash"]
        assert faults[0]["units_killed"] == 4

"""Tests for the RepEx facade."""

import pytest

from repro.core import RepEx, run_simulation
from repro.core.config import DimensionSpec, EngineSpec, ResourceSpec
from repro.pilot.pilot import PilotState

from tests.conftest import small_tremd_config


class TestFacade:
    def test_run_simulation_wrapper(self):
        res = run_simulation(small_tremd_config())
        assert res.n_replicas == 4
        assert res.title == "test-tremd"

    def test_pilot_cancelled_after_run(self):
        r = RepEx(small_tremd_config())
        r.run()
        assert r.pilot.state in (PilotState.CANCELED, PilotState.DONE)

    def test_pilot_cancelled_on_error(self):
        cfg = small_tremd_config(
            dimensions=[DimensionSpec("salt", 4, 0.0, 1.0)],
        )
        r = RepEx(cfg)
        # async salt is unsupported; force it to raise
        cfg.pattern.kind = "asynchronous"
        from repro.core.emm import AsynchronousEMM

        r.emm = AsynchronousEMM(cfg, r.amm, r.session, r.pilot)
        with pytest.raises(NotImplementedError):
            r.run()
        assert r.pilot.state is PilotState.CANCELED

    def test_namd_engine_selection(self):
        cfg = small_tremd_config(engine=EngineSpec(name="namd"))
        r = RepEx(cfg)
        assert r.amm.adapter.name == "namd"
        res = r.run()
        assert len(res.cycle_timings) == 2

    def test_unknown_engine_raises(self):
        cfg = small_tremd_config(engine=EngineSpec(name="gromacs"))
        with pytest.raises(KeyError, match="unknown MD engine"):
            RepEx(cfg)

    def test_unknown_cluster_raises(self):
        cfg = small_tremd_config(resource=ResourceSpec("summit", cores=8))
        with pytest.raises(KeyError, match="unknown cluster"):
            RepEx(cfg)

    def test_result_metadata(self):
        res = run_simulation(small_tremd_config())
        assert res.type_string == "T"
        assert res.pattern == "synchronous"
        assert res.execution_mode == "I"
        assert res.pilot_cores == 4
        assert res.steps_per_cycle == 6000

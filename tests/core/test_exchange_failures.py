"""Failure handling in the exchange phase (not just MD).

The paper's fault-tolerance story covers replica tasks generally; here we
verify the framework survives failures of the exchange computation itself
and of the S-REMD single-point tasks.
"""

import numpy as np
import pytest

from repro.core import RepEx
from repro.core.config import DimensionSpec, ResourceSpec
from repro.pilot import FailureModel, Session

from tests.conftest import small_tremd_config


def run_with_phase_failures(phase, config):
    session = Session(
        failure_model=FailureModel(
            probability=1.0,
            rng=np.random.default_rng(0),
            only_phase=phase,
        )
    )
    return RepEx(config, session=session).run()


class TestExchangeTaskFailure:
    def test_failed_exchange_keeps_simulation_alive(self):
        res = run_with_phase_failures("exchange", small_tremd_config())
        # every cycle completed, but no swaps were applied
        assert len(res.cycle_timings) == 2
        assert res.exchange_stats["temperature"].attempted == 0
        # windows untouched
        assert [r.window("temperature") for r in res.replicas] == [
            0, 1, 2, 3,
        ]

    def test_md_still_progresses(self):
        res = run_with_phase_failures("exchange", small_tremd_config())
        for rep in res.replicas:
            assert len(rep.history) == 2
            assert not any(rec.failed for rec in rep.history)


class TestSinglePointFailure:
    def _salt_config(self):
        return small_tremd_config(
            dimensions=[DimensionSpec("salt", 4, 0.0, 1.0)],
            resource=ResourceSpec("supermic", cores=4),
        )

    def test_all_sp_failed_drops_all_proposals(self):
        res = run_with_phase_failures("single_point", self._salt_config())
        # the exchange unit ran, but every proposal involving replicas
        # without energies was discarded
        assert res.exchange_stats["salt"].attempted == 0
        assert [r.window("salt") for r in res.replicas] == [0, 1, 2, 3]

    def test_sp_success_path_differs(self):
        res = RepEx(self._salt_config()).run()
        assert res.exchange_stats["salt"].attempted > 0

"""End-to-end tests of the pH exchange extension (paper future work)."""

import pytest

from repro.core import RepEx
from repro.core.config import DimensionSpec, ResourceSpec

from tests.conftest import small_tremd_config


def ph_config(**over):
    return small_tremd_config(
        dimensions=[
            DimensionSpec("ph", 6, 4.0, 9.0, pka=6.5),
        ],
        resource=ResourceSpec("supermic", cores=6),
        n_cycles=8,
        **over,
    )


class TestPHREMD:
    def test_runs_end_to_end(self):
        res = RepEx(ph_config()).run()
        assert res.type_string == "H"
        assert len(res.cycle_timings) == 8
        assert res.exchange_stats["ph"].attempted > 0

    def test_protonation_recorded(self):
        res = RepEx(ph_config()).run()
        for rep in res.replicas:
            assert rep.last_energies.get("protonation") in (0.0, 1.0)

    def test_window_multiset_conserved(self):
        res = RepEx(ph_config()).run()
        assert sorted(r.window("ph") for r in res.replicas) == list(range(6))

    def test_some_exchanges_accepted(self):
        """Adjacent pH windows differ by 1 unit: swaps of equal-protonation
        pairs are free, so acceptance is substantial."""
        res = RepEx(ph_config()).run()
        assert res.acceptance_ratio("ph") > 0.2

    def test_combined_t_ph_remd(self):
        """2D REMD mixing temperature and pH (a combination no package in
        Table 1 offers)."""
        cfg = small_tremd_config(
            dimensions=[
                DimensionSpec("temperature", 3, 290.0, 320.0),
                DimensionSpec("ph", 3, 5.0, 8.0),
            ],
            resource=ResourceSpec("supermic", cores=9),
            n_cycles=4,
        )
        res = RepEx(cfg).run()
        assert res.type_string == "TH"
        assert res.exchange_stats["temperature"].attempted > 0
        assert res.exchange_stats["ph"].attempted > 0

"""Tests pinning the Eq. 1 timing-decomposition semantics."""

import pytest

from repro.core import RepEx
from repro.core.config import DimensionSpec, ResourceSpec

from tests.conftest import small_tremd_config


class TestModeISemantics:
    def test_md_span_close_to_md_exec_in_mode_i(self):
        """With all replicas concurrent, the MD phase span exceeds the
        slowest task only by staging + launch stagger."""
        res = RepEx(small_tremd_config()).run()
        for c in res.cycle_timings:
            assert c.t_md_span >= c.t_md
            assert c.t_md_span - c.t_md < 5.0

    def test_eq1_terms_roughly_cover_span(self):
        """The Eq. 1 sum approximates the cycle span (terms overlap across
        tasks, so it need not be exact, but it must be the right size)."""
        res = RepEx(small_tremd_config()).run()
        for c in res.cycle_timings:
            assert 0.7 * c.span < c.tc < 1.3 * c.span

    def test_t_rp_is_launch_overhead(self):
        """T_RP grows with concurrently launched tasks (paper Sec. 4.1)."""
        small = RepEx(small_tremd_config()).run()
        big = RepEx(
            small_tremd_config(
                dimensions=[
                    DimensionSpec("temperature", 32, 273.0, 373.0)
                ],
                resource=ResourceSpec("supermic", cores=32),
            )
        ).run()
        assert big.mean_component("t_rp") > small.mean_component("t_rp")

    def test_t_data_includes_exchange_staging_for_salt(self):
        """S-REMD stages energy-matrix rows: its T_data beats T-REMD's."""
        t_res = RepEx(small_tremd_config()).run()
        s_res = RepEx(
            small_tremd_config(
                dimensions=[DimensionSpec("salt", 4, 0.0, 1.0)]
            )
        ).run()
        assert s_res.mean_component("t_data") > t_res.mean_component(
            "t_data"
        )


class TestModeIISemantics:
    def test_md_span_counts_waves(self):
        """In Mode II the span is ~waves x the per-task time."""
        res = RepEx(
            small_tremd_config(
                dimensions=[
                    DimensionSpec("temperature", 8, 273.0, 373.0)
                ],
                resource=ResourceSpec("supermic", cores=2),
                n_cycles=1,
            )
        ).run()
        c = res.cycle_timings[0]
        # 4 waves of ~141 s each
        assert c.t_md_span > 3.5 * c.t_md
        # per-task execution time is unchanged by the batching
        assert 135.0 < c.t_md < 160.0

    def test_wave_penalty_charged(self):
        """Mode II cycles include the MPI re-layout gaps."""
        from repro.core.execution_modes import ModeII

        res_default = RepEx(
            small_tremd_config(
                dimensions=[
                    DimensionSpec("temperature", 8, 273.0, 373.0)
                ],
                resource=ResourceSpec("supermic", cores=4),
                n_cycles=1,
            )
        ).run()
        res_nopenalty = RepEx(
            small_tremd_config(
                dimensions=[
                    DimensionSpec("temperature", 8, 273.0, 373.0)
                ],
                resource=ResourceSpec("supermic", cores=4),
                n_cycles=1,
            ),
            mode=ModeII(wave_gap_s=0.0, per_core_wave_gap_s=0.0),
        ).run()
        assert (
            res_default.cycle_timings[0].span
            > res_nopenalty.cycle_timings[0].span
        )


class TestDeterminism:
    def test_timings_bit_identical_across_runs(self):
        a = RepEx(small_tremd_config()).run()
        b = RepEx(small_tremd_config()).run()
        for ca, cb in zip(a.cycle_timings, b.cycle_timings):
            assert ca.t_md == cb.t_md
            assert ca.t_ex == cb.t_ex
            assert ca.span == cb.span

"""Tests for the GPU extension (paper: 'support for GPUs is already
available on Stampede')."""

import pytest

from repro.core import RepEx
from repro.core.config import (
    ConfigError,
    DimensionSpec,
    ResourceSpec,
    SimulationConfig,
)
from repro.md.perfmodel import deterministic_model
from repro.md.system import alanine_dipeptide_large
from repro.pilot import (
    PilotDescription,
    Session,
    UnitDescription,
)

from tests.conftest import small_tremd_config


def gpu_config(**over):
    defaults = dict(
        dimensions=[DimensionSpec("temperature", 4, 273.0, 373.0)],
        resource=ResourceSpec("stampede", cores=4, gpus=4),
        gpus_per_replica=1,
        engine=__import__(
            "repro.core.config", fromlist=["EngineSpec"]
        ).EngineSpec(name="amber", system="ala2-large"),
        steps_per_cycle=20000,
    )
    defaults.update(over)
    return small_tremd_config(**defaults)


class TestPilotGPUs:
    def test_gpu_units_scheduled_and_capped(self):
        with Session() as s:
            pilot = s.submit_pilot(
                PilotDescription(resource="stampede", cores=8, gpus=2)
            )
            s.wait_pilot(pilot)
            units = s.submit_units(
                pilot,
                [
                    UnitDescription(name=f"g{i}", cores=1, gpus=1,
                                    duration=10.0)
                    for i in range(4)
                ],
            )
            s.wait_units(units)
            assert all(u.succeeded for u in units)
            # only 2 GPUs: tasks ran in two waves
            starts = sorted(u.start_time for u in units)
            assert starts[2] > starts[0] + 9.0

    def test_gpu_request_validated_against_cluster(self):
        with Session() as s:
            with pytest.raises(ValueError, match="GPUs"):
                s.submit_pilot(
                    PilotDescription(
                        resource="supermic", cores=8, gpus=4
                    )  # supermic preset has no GPUs
                )

    def test_oversized_gpu_unit_rejected(self):
        with Session() as s:
            pilot = s.submit_pilot(
                PilotDescription(resource="stampede", cores=8, gpus=1)
            )
            s.wait_pilot(pilot)
            from repro.pilot import SchedulerError

            with pytest.raises(SchedulerError, match="GPUs"):
                s.submit_units(
                    pilot,
                    [UnitDescription(name="big", cores=1, gpus=2)],
                )


class TestGPUConfig:
    def test_cuda_executable_selected(self):
        r = RepEx(gpu_config())
        assert r.amm.executable == "pmemd.cuda"

    def test_explicit_executable_wins(self):
        from repro.core.config import EngineSpec

        cfg = gpu_config(
            engine=EngineSpec(
                name="amber", system="ala2-large", executable="sander"
            )
        )
        assert RepEx(cfg).amm.executable == "sander"

    def test_gpus_require_pilot_gpus(self):
        with pytest.raises(ConfigError, match="GPU"):
            gpu_config(resource=ResourceSpec("stampede", cores=4, gpus=0))

    def test_gpu_run_is_faster_than_cpu(self):
        gpu_res = RepEx(gpu_config()).run()
        cpu_res = RepEx(
            gpu_config(gpus_per_replica=0)  # falls back to sander
        ).run()
        assert (
            gpu_res.mean_component("t_md")
            < 0.25 * cpu_res.mean_component("t_md")
        )

    def test_perfmodel_cuda_anchor(self):
        perf = deterministic_model()
        big = alanine_dipeptide_large()
        t_cuda = perf.md_duration("pmemd.cuda", big, 20000, cores=1)
        t_serial = perf.md_duration("sander", big, 20000, cores=1)
        assert t_cuda < t_serial / 10

"""Regression tests: two sessions in one process must not interfere.

Historically the stack leaned on process-global state — one default
metrics registry (reset and re-clock-bound by every run) and module-level
pilot uid counters — which was fine while a process hosted exactly one
session, and fatal once the campaign arbiter made sessions co-resident.
These tests pin the isolation contract: a ``RepEx`` handed a private
registry is a *value*, and any number of them can be built and run in
one process, in any interleaving, with bit-identical results.
"""

import pytest

from repro.core import RepEx
from repro.core.config import DimensionSpec, ResourceSpec, SimulationConfig
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.pilot.session import Session
from tests.conftest import small_tremd_config


def config_a():
    return small_tremd_config(title="co-a", seed=11)


def config_b():
    return SimulationConfig(
        title="co-b",
        dimensions=[DimensionSpec("temperature", 3, 290.0, 350.0)],
        resource=ResourceSpec("small-cluster", cores=6),
        n_cycles=3,
        steps_per_cycle=400,
        numeric_steps=2,
        sample_stride=0,
        seed=77,
    )


def solo_metrics(config):
    """The metrics snapshot of ``config`` run alone in a fresh registry."""
    registry = MetricsRegistry()
    result = RepEx(config, registry=registry).run()
    return result.manifest.metrics, result


class TestCoResidentSessions:
    def test_interleaved_runs_match_solo_runs(self):
        expected_a, _ = solo_metrics(config_a())
        expected_b, _ = solo_metrics(config_b())
        # interleave construction and execution of two private-registry
        # simulations in one process
        repex_a = RepEx(config_a(), registry=MetricsRegistry())
        repex_b = RepEx(config_b(), registry=MetricsRegistry())
        result_a = repex_a.run()
        result_b = repex_b.run()
        assert result_a.manifest.metrics == expected_a
        assert result_b.manifest.metrics == expected_b

    def test_manifests_are_byte_identical_across_coresident_runs(self):
        first = RepEx(config_a(), registry=MetricsRegistry()).run()
        second = RepEx(config_a(), registry=MetricsRegistry()).run()
        assert first.manifest.to_jsonl() == second.manifest.to_jsonl()

    def test_runtime_counters_land_in_the_owning_registry(self):
        # metropolis_accept resolves the registry at call time: with a
        # private registry installed for the run, the exchange counters
        # must land there — and only there
        default_before = get_registry().snapshot()["counters"]
        registry = MetricsRegistry()
        RepEx(config_a(), registry=registry).run()
        mine = registry.snapshot()["counters"]
        assert mine.get("exchange.attempted", 0) > 0
        default_after = get_registry().snapshot()["counters"]
        assert default_after.get("exchange.attempted", 0) == default_before.get(
            "exchange.attempted", 0
        )

    def test_run_restores_the_process_default_registry(self):
        before = get_registry()
        RepEx(config_a(), registry=MetricsRegistry()).run()
        assert get_registry() is before

    def test_second_session_does_not_clobber_first_results(self):
        registry_a = MetricsRegistry()
        repex_a = RepEx(config_a(), registry=registry_a)
        result_a = repex_a.run()
        snapshot_after_a = registry_a.snapshot()
        # running an unrelated simulation afterwards must leave the
        # first registry (and the manifest built from it) untouched
        RepEx(config_b(), registry=MetricsRegistry()).run()
        assert registry_a.snapshot() == snapshot_after_a
        assert result_a.manifest.metrics["counters"] == (
            snapshot_after_a["counters"]
        )


class TestSessionScopedUids:
    def test_first_pilot_is_always_pilot_0000(self):
        # module-counter era: the second session's first pilot would have
        # been pilot.0001, leaking process history into manifests
        uids = []
        for _ in range(2):
            session = Session(registry=MetricsRegistry())
            from repro.pilot.pilot import PilotDescription

            pilot = session.submit_pilot(
                PilotDescription(resource="small-cluster", cores=4)
            )
            uids.append(pilot.uid)
            session.close()
        assert uids == ["pilot.0000", "pilot.0000"]

    def test_pilot_uids_increment_within_a_session(self):
        from repro.pilot.pilot import PilotDescription

        session = Session(registry=MetricsRegistry())
        uids = [
            session.submit_pilot(
                PilotDescription(resource="small-cluster", cores=2)
            ).uid
            for _ in range(3)
        ]
        session.close()
        assert uids == ["pilot.0000", "pilot.0001", "pilot.0002"]

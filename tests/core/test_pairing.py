"""Tests for pair-selection strategies."""

import numpy as np
import pytest

from repro.core.exchange.pairing import (
    GibbsPairing,
    NeighborPairing,
    RandomPairing,
    get_pair_selector,
)
from repro.core.replica import Replica


def make_group(n):
    return [
        Replica(rid=i, coords=np.zeros(2), param_indices={"d": i})
        for i in range(n)
    ]


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestNeighborPairing:
    def test_even_cycle_pairs(self, rng):
        group = make_group(6)
        pairs = NeighborPairing().pairs(group, cycle=0, rng=rng)
        assert [(a.rid, b.rid) for a, b in pairs] == [(0, 1), (2, 3), (4, 5)]

    def test_odd_cycle_pairs(self, rng):
        group = make_group(6)
        pairs = NeighborPairing().pairs(group, cycle=1, rng=rng)
        assert [(a.rid, b.rid) for a, b in pairs] == [(1, 2), (3, 4)]

    def test_odd_group_size(self, rng):
        group = make_group(5)
        pairs = NeighborPairing().pairs(group, cycle=0, rng=rng)
        assert [(a.rid, b.rid) for a, b in pairs] == [(0, 1), (2, 3)]

    def test_pairs_are_disjoint(self, rng):
        for cycle in (0, 1):
            pairs = NeighborPairing().pairs(make_group(9), cycle, rng)
            seen = [r.rid for p in pairs for r in p]
            assert len(seen) == len(set(seen))

    def test_tiny_groups(self, rng):
        assert NeighborPairing().pairs(make_group(1), 0, rng) == []
        assert NeighborPairing().pairs([], 0, rng) == []


class TestRandomPairing:
    def test_disjoint(self, rng):
        pairs = RandomPairing().pairs(make_group(8), 0, rng)
        seen = [r.rid for p in pairs for r in p]
        assert len(seen) == len(set(seen)) == 8

    def test_varies_with_rng(self):
        g = make_group(8)
        p1 = RandomPairing().pairs(g, 0, np.random.default_rng(1))
        p2 = RandomPairing().pairs(g, 0, np.random.default_rng(2))
        assert [(a.rid, b.rid) for a, b in p1] != [
            (a.rid, b.rid) for a, b in p2
        ]


class TestGibbsPairing:
    def test_more_attempts_than_neighbor(self, rng):
        g = make_group(8)
        n_gibbs = len(GibbsPairing(n_sweeps=3).pairs(g, 0, rng))
        n_neigh = len(NeighborPairing().pairs(g, 0, rng))
        assert n_gibbs > n_neigh

    def test_sweeps_alternate_offsets(self, rng):
        g = make_group(4)
        pairs = GibbsPairing(n_sweeps=2).pairs(g, 0, rng)
        rids = [(a.rid, b.rid) for a, b in pairs]
        assert (0, 1) in rids and (1, 2) in rids

    def test_validation(self):
        with pytest.raises(ValueError):
            GibbsPairing(n_sweeps=0)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_pair_selector("neighbor"), NeighborPairing)
        assert isinstance(get_pair_selector("random"), RandomPairing)
        assert isinstance(
            get_pair_selector("gibbs", n_sweeps=5), GibbsPairing
        )

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown pair selector"):
            get_pair_selector("tournament")

"""Exchange-ordering flexibility: "arbitrary ordering of available
exchange types" (paper Sec. 1), e.g. TUU versus TSU versus UST."""

import pytest

from repro.core import RepEx
from repro.core.config import DimensionSpec, ResourceSpec

from tests.conftest import small_tremd_config


def dims_for(code: str):
    mapping = {
        "T": DimensionSpec("temperature", 2, 273.0, 373.0),
        "S": DimensionSpec("salt", 2, 0.0, 1.0),
        "U": DimensionSpec(
            "umbrella", 2, 0.0, 360.0, angle="phi", force_constant=0.0005
        ),
        "V": DimensionSpec(
            "umbrella", 2, 0.0, 360.0, angle="psi", force_constant=0.0005
        ),
        "H": DimensionSpec("ph", 2, 5.0, 8.0),
    }
    return [
        __import__("dataclasses").replace(mapping[c]) for c in code
    ]


def run_order(code: str, n_cycles=None):
    cfg = small_tremd_config(
        dimensions=dims_for(code),
        resource=ResourceSpec("supermic", cores=2 ** len(code)),
        n_cycles=n_cycles or 2 * len(code),
    )
    return RepEx(cfg).run()


class TestOrdering:
    @pytest.mark.parametrize("code", ["TSU", "UST", "SUT", "TUV"])
    def test_any_ordering_runs(self, code):
        res = run_order(code)
        want = code.replace("V", "U")
        assert res.type_string == want

    def test_rotation_respects_order(self):
        res = run_order("UST")
        dims = [c.dimension for c in res.cycle_timings[:3]]
        assert dims == ["umbrella_phi", "salt", "temperature"]

    def test_four_dimensions(self):
        """Beyond the paper's 3D: a 4D TSUV lattice runs unchanged."""
        res = run_order("TSUV")
        assert res.n_replicas == 16
        assert len({c.dimension for c in res.cycle_timings}) == 4

    def test_ph_composes_too(self):
        res = run_order("TH")
        assert res.type_string == "TH"

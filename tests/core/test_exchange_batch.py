"""Batched Metropolis sweeps must be bit-identical to the scalar path.

``compute_exchange`` evaluates all pair exponents of a disjoint sweep as
one stacked numpy expression (``ExchangeDimension.batch_exchange_deltas``)
and then runs the accept/reject loop sequentially.  The optimisation is
only sound if every batched exponent equals the scalar
``exchange_delta`` *exactly* — the golden traces compare Metropolis
decisions, and a 1-ulp drift flips marginal ones — so these tests assert
float equality, not approx.
"""

import numpy as np
import pytest

from repro.core.exchange import (
    GibbsPairing,
    GroupEnergyCache,
    NeighborPairing,
    PHDimension,
    RandomPairing,
    SaltDimension,
    TemperatureDimension,
    UmbrellaDimension,
)
from repro.core.ram import compute_exchange
from repro.core.replica import Replica
from repro.md.toymd import ThermodynamicState


def make_group(n, dim_name, rng, *, salted=False):
    """Replicas with randomized coords/energies on windows 0..n-1."""
    reps = []
    for i in range(n):
        r = Replica(
            rid=i,
            coords=rng.uniform(-np.pi, np.pi, size=2),
            param_indices={dim_name: i},
        )
        r.last_energies = {
            "potential_energy": float(rng.normal(-90.0, 15.0)),
            "protonation": float(i % 2),
        }
        reps.append(r)
    return reps


def make_states(dim, reps):
    return {
        r.rid: dim.apply(
            ThermodynamicState(temperature=300.0 + 2.0 * r.rid),
            r.window(dim.name),
        )
        for r in reps
    }


def dimensions(n):
    return [
        TemperatureDimension.geometric(280.0, 400.0, n),
        UmbrellaDimension(
            [i * 360.0 / n for i in range(n)],
            angle="phi", force_constant=0.01,
        ),
        UmbrellaDimension(
            [i * 360.0 / n for i in range(n)],
            angle="psi", force_constant=0.02,
        ),
        PHDimension.linear(4.0, 9.0, n),
    ]


@pytest.mark.parametrize("dim_index", range(4))
@pytest.mark.parametrize("seed", [0, 7])
def test_batch_deltas_equal_scalar_deltas_exactly(dim_index, seed):
    rng = np.random.default_rng(seed)
    n = 9
    dim = dimensions(n)[dim_index]
    reps = make_group(n, dim.name, rng)
    states = make_states(dim, reps)
    window_of = {r.rid: r.window(dim.name) for r in reps}
    pairs = NeighborPairing().pairs(reps, cycle=seed, rng=rng)
    deltas = dim.batch_exchange_deltas(
        pairs, window_of=window_of, states=states,
        cache=GroupEnergyCache(states),
    )
    assert deltas is not None and len(deltas) == len(pairs)
    for k, (a, b) in enumerate(pairs):
        scalar = dim.exchange_delta(
            a, b, window_i=window_of[a.rid], window_j=window_of[b.rid],
            states=states,
        )
        assert float(deltas[k]) == scalar  # exact, not approx


def test_salt_batch_matches_scalar_with_energy_matrix():
    rng = np.random.default_rng(3)
    n = 8
    dim = SaltDimension([0.1 * i for i in range(n)])
    reps = make_group(n, dim.name, rng)
    states = make_states(dim, reps)
    window_of = {r.rid: r.window(dim.name) for r in reps}
    energy_matrix = {r.rid: rng.normal(-50.0, 5.0, size=n) for r in reps}
    pairs = NeighborPairing().pairs(reps, cycle=0, rng=rng)
    deltas = dim.batch_exchange_deltas(
        pairs, window_of=window_of, states=states,
        energy_matrix=energy_matrix, cache=GroupEnergyCache(states),
    )
    for k, (a, b) in enumerate(pairs):
        scalar = dim.exchange_delta(
            a, b, window_i=window_of[a.rid], window_j=window_of[b.rid],
            states=states, energy_matrix=energy_matrix,
        )
        assert float(deltas[k]) == scalar


def test_salt_without_matrix_stays_on_scalar_path():
    """The internal-evaluator variant opts out of batching."""
    dim = SaltDimension([0.0, 0.5])
    rng = np.random.default_rng(0)
    reps = make_group(2, dim.name, rng)
    states = make_states(dim, reps)
    pairs = [(reps[0], reps[1])]
    assert (
        dim.batch_exchange_deltas(
            pairs, window_of={0: 0, 1: 1}, states=states,
        )
        is None
    )


def test_incomplete_inputs_fall_back_to_scalar_path():
    """Missing energies must NOT raise in batch mode.

    The scalar loop raises mid-sweep (after earlier pairs were already
    counted); an eager batch failure would change that observable order,
    so the batch gather returns None and lets the scalar path reproduce
    the original error behaviour.
    """
    rng = np.random.default_rng(1)
    dim = TemperatureDimension.geometric(280.0, 400.0, 4)
    reps = make_group(4, dim.name, rng)
    del reps[2].last_energies["potential_energy"]
    states = make_states(dim, reps)
    window_of = {r.rid: r.window(dim.name) for r in reps}
    pairs = [(reps[0], reps[1]), (reps[2], reps[3])]
    assert (
        dim.batch_exchange_deltas(
            pairs, window_of=window_of, states=states,
        )
        is None
    )

    salt = SaltDimension([0.1, 0.2, 0.3, 0.4])
    matrix = {0: np.zeros(4), 1: np.zeros(4)}  # rids 2, 3 missing
    assert (
        salt.batch_exchange_deltas(
            pairs, window_of=window_of, states=states, energy_matrix=matrix,
        )
        is None
    )


def test_selector_disjoint_flags():
    assert NeighborPairing.disjoint is True
    assert RandomPairing.disjoint is True
    assert GibbsPairing.disjoint is False


@pytest.mark.parametrize("dim_index", range(4))
def test_compute_exchange_identical_with_and_without_batching(dim_index):
    """Full sweep: same proposals, same decisions, same RNG consumption."""
    n = 12
    outcomes = []
    for batched in (True, False):
        rng = np.random.default_rng(42)
        group_rng = np.random.default_rng(17)
        dim = dimensions(n)[dim_index]
        reps = make_group(n, dim.name, group_rng)
        states = make_states(dim, reps)
        if not batched:
            dim.batch_exchange_deltas = (
                lambda *a, **kw: None  # force the scalar loop
            )
        proposals = compute_exchange(
            dim, reps, states, NeighborPairing(), cycle=1, rng=rng,
            cache=GroupEnergyCache(states),
        )
        outcomes.append(
            (
                [
                    (p.rid_i, p.rid_j, p.dimension, p.delta, p.accepted)
                    for p in proposals
                ],
                rng.random(),  # same stream position afterwards
            )
        )
    assert outcomes[0] == outcomes[1]

"""Tests for the result containers."""

import pytest

from repro.core.results import CycleTiming, ExchangeStats, SimulationResult


def timing(cycle=0, dim="t", **over):
    defaults = dict(
        t_md=100.0, t_ex=10.0, t_data=1.0, t_repex=2.0, t_rp=5.0,
        span=120.0, t_start=0.0, t_end=120.0,
    )
    defaults.update(over)
    return CycleTiming(cycle=cycle, dimension=dim, **defaults)


def result(timings, **over):
    defaults = dict(
        title="r", type_string="T", pattern="synchronous",
        execution_mode="I", n_replicas=8, pilot_cores=8,
        cycle_timings=timings,
    )
    defaults.update(over)
    return SimulationResult(**defaults)


class TestCycleTiming:
    def test_tc_is_eq1_sum(self):
        c = timing()
        assert c.tc == pytest.approx(100.0 + 10.0 + 1.0 + 2.0 + 5.0)


class TestExchangeStats:
    def test_ratio(self):
        s = ExchangeStats(attempted=4, accepted=1)
        assert s.ratio == 0.25

    def test_zero_attempts(self):
        assert ExchangeStats().ratio == 0.0


class TestSimulationResult:
    def test_average_cycle_time(self):
        res = result([timing(span=100.0), timing(cycle=1, span=200.0)])
        assert res.average_cycle_time() == pytest.approx(150.0)

    def test_empty_timings(self):
        res = result([])
        assert res.average_cycle_time() == 0.0
        assert res.mean_component("t_md") == 0.0

    def test_mean_component(self):
        res = result([timing(t_md=100.0), timing(cycle=1, t_md=140.0)])
        assert res.mean_component("t_md") == pytest.approx(120.0)

    def test_mean_exchange_time_filters_dimension(self):
        res = result(
            [
                timing(dim="t", t_ex=10.0),
                timing(cycle=1, dim="s", t_ex=100.0),
            ]
        )
        assert res.mean_exchange_time("t") == pytest.approx(10.0)
        assert res.mean_exchange_time("s") == pytest.approx(100.0)
        assert res.mean_exchange_time("u") == 0.0

    def test_mean_md_time_optional_filter(self):
        res = result(
            [timing(dim="t", t_md=100.0), timing(cycle=1, dim="s", t_md=200.0)]
        )
        assert res.mean_md_time() == pytest.approx(150.0)
        assert res.mean_md_time("s") == pytest.approx(200.0)

    def test_wallclock(self):
        res = result([], t_start=10.0, t_end=110.0)
        assert res.wallclock == 100.0

    def test_utilization(self):
        res = result(
            [], t_start=0.0, t_end=100.0, md_core_seconds=400.0,
            pilot_cores=8,
        )
        assert res.utilization() == pytest.approx(0.5)

    def test_utilization_zero_wallclock(self):
        res = result([])
        assert res.utilization() == 0.0

    def test_acceptance_ratio_missing_dimension(self):
        res = result([])
        with pytest.raises(KeyError):
            res.acceptance_ratio("nope")

    def test_full_cycle_grouping_validates(self):
        res = result([timing()])
        with pytest.raises(ValueError):
            res.full_cycle_timings(0)

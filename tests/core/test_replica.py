"""Tests for replica objects."""

import numpy as np
import pytest

from repro.core.replica import (
    CycleRecord,
    Replica,
    ReplicaStatus,
    swap_parameters,
)


def make_replica(rid=0, **params):
    indices = params or {"temperature": 0}
    return Replica(rid=rid, coords=np.zeros(2), param_indices=dict(indices))


class TestConstruction:
    def test_defaults(self):
        r = make_replica()
        assert r.status is ReplicaStatus.ACTIVE
        assert r.cycle == 0
        assert r.cores == 1

    def test_coords_validated(self):
        with pytest.raises(ValueError):
            Replica(rid=0, coords=np.zeros(3), param_indices={"t": 0})

    def test_rid_validated(self):
        with pytest.raises(ValueError):
            Replica(rid=-1, coords=np.zeros(2), param_indices={"t": 0})

    def test_cores_validated(self):
        with pytest.raises(ValueError):
            Replica(
                rid=0, coords=np.zeros(2), param_indices={"t": 0}, cores=0
            )


class TestWindows:
    def test_window_lookup(self):
        r = make_replica(temperature=3, salt=1)
        assert r.window("temperature") == 3
        assert r.window("salt") == 1

    def test_missing_dimension_raises(self):
        with pytest.raises(KeyError):
            make_replica().window("salt")

    def test_group_key_excludes_active(self):
        r = make_replica(temperature=2, salt=1, umbrella=0)
        key = r.group_key("salt")
        assert key == (("temperature", 2), ("umbrella", 0))

    def test_group_key_sorted_and_stable(self):
        a = make_replica(rid=1, z=1, a=2)
        b = make_replica(rid=2, a=2, z=1)
        assert a.group_key("none") == b.group_key("none")


class TestSwap:
    def test_swap_parameters(self):
        a = make_replica(rid=0, temperature=0)
        b = make_replica(rid=1, temperature=1)
        swap_parameters(a, b, "temperature")
        assert a.window("temperature") == 1
        assert b.window("temperature") == 0

    def test_swap_only_touches_dimension(self):
        a = make_replica(rid=0, temperature=0, salt=5)
        b = make_replica(rid=1, temperature=1, salt=7)
        swap_parameters(a, b, "temperature")
        assert a.window("salt") == 5
        assert b.window("salt") == 7


class TestHistory:
    def test_exchange_counters(self):
        r = make_replica()
        r.history.append(
            CycleRecord(0, "temperature", {"temperature": 0}, -1.0, 0.0,
                        partner=1, accepted=True)
        )
        r.history.append(
            CycleRecord(1, "temperature", {"temperature": 1}, -1.0, 0.0,
                        partner=2, accepted=False)
        )
        r.history.append(
            CycleRecord(2, "temperature", {"temperature": 1}, -1.0, 0.0)
        )
        assert r.n_exchanges_attempted == 2
        assert r.n_exchanges_accepted == 1

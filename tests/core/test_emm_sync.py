"""Tests for the synchronous EMM (barrier pattern)."""

import numpy as np
import pytest

from repro.core import RepEx
from repro.core.config import (
    DimensionSpec,
    FailureSpec,
    PatternSpec,
    ResourceSpec,
)
from repro.core.replica import ReplicaStatus
from repro.obs.metrics import MetricsRegistry, using_registry

from tests.conftest import small_tremd_config


class TestBasicRun:
    def test_cycle_count(self):
        res = RepEx(small_tremd_config(n_cycles=3)).run()
        assert len(res.cycle_timings) == 3
        for c in res.cycle_timings:
            assert c.dimension == "temperature"

    def test_timing_decomposition_positive(self):
        res = RepEx(small_tremd_config()).run()
        c = res.cycle_timings[0]
        assert c.t_md > 100.0  # sander anchor ~141 s
        assert c.t_ex > 0.0
        assert c.t_repex > 0.0
        assert c.t_rp >= 0.0
        assert c.span >= c.t_md

    def test_replica_histories_populated(self):
        res = RepEx(small_tremd_config(n_cycles=2)).run()
        for rep in res.replicas:
            assert len(rep.history) == 2
            for rec in rep.history:
                assert np.isfinite(rec.potential_energy)

    def test_window_multiset_conserved(self):
        """Exchanges permute windows; the ladder stays fully occupied."""
        res = RepEx(small_tremd_config(n_cycles=4)).run()
        windows = sorted(r.window("temperature") for r in res.replicas)
        assert windows == [0, 1, 2, 3]

    def test_exchange_stats_recorded(self):
        res = RepEx(small_tremd_config(n_cycles=4)).run()
        stats = res.exchange_stats["temperature"]
        # 4 replicas, alternating pairing: 2 + 1 + 2 + 1 = 6 attempts
        assert stats.attempted == 6

    def test_deterministic(self):
        r1 = RepEx(small_tremd_config(n_cycles=2)).run()
        r2 = RepEx(small_tremd_config(n_cycles=2)).run()
        assert r1.average_cycle_time() == pytest.approx(
            r2.average_cycle_time()
        )
        w1 = [r.window("temperature") for r in r1.replicas]
        w2 = [r.window("temperature") for r in r2.replicas]
        assert w1 == w2

    def test_no_exchange_baseline(self):
        res = RepEx(small_tremd_config(exchange_enabled=False)).run()
        assert all(c.t_ex == 0.0 for c in res.cycle_timings)
        assert res.exchange_stats["temperature"].attempted == 0

    def test_utilization_bounds(self):
        res = RepEx(small_tremd_config()).run()
        assert 0.0 < res.utilization() <= 1.0


class TestMultiDim:
    def _tsu(self, **over):
        return small_tremd_config(
            dimensions=[
                DimensionSpec("temperature", 2, 273.0, 373.0),
                DimensionSpec("salt", 2, 0.0, 1.0),
                DimensionSpec(
                    "umbrella", 2, 0.0, 360.0, angle="phi",
                    force_constant=0.0006,
                ),
            ],
            resource=ResourceSpec("supermic", cores=8),
            n_cycles=6,
            **over,
        )

    def test_dimension_rotation(self):
        res = RepEx(self._tsu()).run()
        dims = [c.dimension for c in res.cycle_timings]
        assert dims == [
            "temperature", "salt", "umbrella_phi",
            "temperature", "salt", "umbrella_phi",
        ]

    def test_salt_exchange_slower_than_t(self):
        """Fig. 9: S exchange time >> T exchange (extra SP tasks)."""
        res = RepEx(self._tsu()).run()
        t_ex_t = res.mean_exchange_time("temperature")
        t_ex_s = res.mean_exchange_time("salt")
        assert t_ex_s > 2 * t_ex_t

    def test_full_cycle_grouping(self):
        res = RepEx(self._tsu()).run()
        groups = res.full_cycle_timings(3)
        assert len(groups) == 2
        assert all(len(g) == 3 for g in groups)

    def test_all_windows_conserved_per_dim(self):
        res = RepEx(self._tsu()).run()
        for dim in ("temperature", "salt", "umbrella_phi"):
            per_other = {}
            for r in res.replicas:
                key = r.group_key(dim)
                per_other.setdefault(key, []).append(r.window(dim))
            for windows in per_other.values():
                assert sorted(windows) == [0, 1]


class TestModeII:
    def test_fewer_cores_than_replicas(self):
        cfg = small_tremd_config(
            dimensions=[DimensionSpec("temperature", 8, 273.0, 373.0)],
            resource=ResourceSpec("supermic", cores=2),
            n_cycles=2,
        )
        res = RepEx(cfg).run()
        assert res.execution_mode == "II"
        assert len(res.cycle_timings) == 2
        # 8 replicas on 2 cores: 4 waves; cycle span >= 4 x MD time
        assert res.cycle_timings[0].span > 4 * 140.0

    def test_mode_ii_slower_than_mode_i(self):
        base = dict(
            dimensions=[DimensionSpec("temperature", 8, 273.0, 373.0)],
            n_cycles=1,
        )
        res1 = RepEx(
            small_tremd_config(
                resource=ResourceSpec("supermic", cores=8), **base
            )
        ).run()
        res2 = RepEx(
            small_tremd_config(
                resource=ResourceSpec("supermic", cores=4), **base
            )
        ).run()
        assert res2.average_cycle_time() > 1.5 * res1.average_cycle_time()


class TestFaultHandling:
    def test_continue_policy_keeps_going(self):
        cfg = small_tremd_config(
            failure=FailureSpec(probability=0.4, policy="continue"),
            n_cycles=3,
            numeric_steps=10,
        )
        res = RepEx(cfg).run()
        assert res.n_failures > 0
        assert res.n_relaunches == 0
        assert len(res.cycle_timings) == 3
        # failed cycles are recorded on the replicas
        failed_records = sum(
            1 for r in res.replicas for rec in r.history if rec.failed
        )
        assert failed_records == res.n_failures

    def test_relaunch_policy_recovers(self):
        cfg = small_tremd_config(
            failure=FailureSpec(
                probability=0.4, policy="relaunch", max_relaunches=5
            ),
            n_cycles=3,
            numeric_steps=10,
        )
        res = RepEx(cfg).run()
        assert res.n_failures > 0
        assert res.n_relaunches > 0
        # with relaunches, no replica should carry a failed record
        failed_records = sum(
            1 for r in res.replicas for rec in r.history if rec.failed
        )
        assert failed_records == 0

    def test_failure_free_run_counts_zero(self):
        res = RepEx(small_tremd_config()).run()
        assert res.n_failures == 0
        assert res.n_relaunches == 0


class TestBarrierDeadline:
    """Deadline-bounded barriers: exchange over the on-time cohort."""

    def _straggler_config(self, **over):
        # 8 replicas at 5 cores each on SuperMIC's 20-core nodes: node 0
        # carries four replicas and is 4x slow, so those four miss a
        # 60s barrier (5-core MD lands around 35s, theirs near 140s)
        defaults = dict(
            dimensions=[DimensionSpec("temperature", 8, 273.0, 373.0)],
            resource=ResourceSpec("supermic", cores=40),
            cores_per_replica=5,
            pattern=PatternSpec(
                kind="synchronous", barrier_deadline_s=60.0
            ),
            failure=FailureSpec(policy="continue", slow_nodes=[[0, 4.0]]),
            n_cycles=2,
            numeric_steps=10,
        )
        defaults.update(over)
        return small_tremd_config(**defaults)

    def test_late_replicas_counted_per_cycle(self):
        res = RepEx(self._straggler_config()).run()
        assert [c.n_late for c in res.cycle_timings] == [4, 4]

    def test_barrier_does_not_stall_on_stragglers(self):
        bounded = RepEx(self._straggler_config()).run()
        rigid = RepEx(
            self._straggler_config(
                pattern=PatternSpec(kind="synchronous")
            )
        ).run()
        # the bounded run's exchange happens at the deadline, not after
        # the 4x-slow units; cycle 0's exchange window opens earlier
        assert (
            bounded.cycle_timings[0].t_md_span
            < rigid.cycle_timings[0].t_md_span
        )
        # ...but the cycle still waits for the late collection, so the
        # ensemble is consistent before cycle 1 starts
        assert all(len(r.history) == 2 for r in bounded.replicas)

    def test_late_replicas_skip_the_exchange_window(self):
        bounded = RepEx(self._straggler_config()).run()
        rigid = RepEx(
            self._straggler_config(
                pattern=PatternSpec(kind="synchronous")
            )
        ).run()
        # only the 4 on-time replicas enter each sweep (vs all 8)
        assert (
            bounded.exchange_stats["temperature"].attempted
            < rigid.exchange_stats["temperature"].attempted
        )
        # the ladder stays fully occupied regardless
        windows = sorted(r.window("temperature") for r in bounded.replicas)
        assert windows == list(range(8))

    def test_counters_match_late_totals(self):
        with using_registry(MetricsRegistry()) as registry:
            res = RepEx(self._straggler_config()).run()
            counters = registry.snapshot()["counters"]
        assert counters["emm.barrier_deadline_fires"] == 2
        assert counters["emm.barrier_late"] == sum(
            c.n_late for c in res.cycle_timings
        )

    def test_generous_deadline_never_fires(self):
        with using_registry(MetricsRegistry()) as registry:
            res = RepEx(
                self._straggler_config(
                    pattern=PatternSpec(
                        kind="synchronous", barrier_deadline_s=10_000.0
                    )
                )
            ).run()
            counters = registry.snapshot()["counters"]
        assert all(c.n_late == 0 for c in res.cycle_timings)
        assert counters["emm.barrier_deadline_fires"] == 0

    def test_default_runs_register_no_barrier_counters(self):
        # the rigid barrier must not even register the counters — zero
        # values show up in snapshots and would perturb golden manifests
        with using_registry(MetricsRegistry()) as registry:
            res = RepEx(small_tremd_config()).run()
            counters = registry.snapshot()["counters"]
        assert all(c.n_late == 0 for c in res.cycle_timings)
        assert not any(k.startswith("emm.barrier") for k in counters)

"""Tests for the Table 1 feature registry."""

from repro.core.capabilities import (
    LITERATURE_ROWS,
    TABLE1_HEADERS,
    feature_matrix,
    repex_row,
    table1_rows,
)


class TestTable1:
    def test_seven_packages(self):
        rows = table1_rows()
        assert len(rows) == 7  # six literature + RepEx

    def test_row_width_matches_headers(self):
        for row in table1_rows():
            assert len(row) == len(TABLE1_HEADERS)

    def test_repex_row_probes_engines(self):
        row = repex_row()
        assert "Amber" in row.md_engines
        assert "NAMD" in row.md_engines

    def test_repex_supports_both_patterns(self):
        assert repex_row().re_patterns == "sync, async"

    def test_repex_is_only_3plus_dim_package(self):
        matrix = feature_matrix()
        for name, feats in matrix.items():
            if name == "RepEx":
                assert int(feats.n_dims) >= 3
            else:
                assert int(feats.n_dims) <= 2

    def test_literature_values_match_paper(self):
        matrix = feature_matrix()
        assert matrix["CHARMM"].max_replicas == "4096"
        assert matrix["Charm++/NAMD MCA"].max_cpu_cores == "524288"
        assert matrix["VCG async"].re_patterns == "sync, async"
        assert matrix["LAMMPS"].max_replicas == "100"

    def test_only_vcg_and_repex_async(self):
        matrix = feature_matrix()
        async_pkgs = {
            n for n, f in matrix.items() if "async" in f.re_patterns
        }
        assert async_pkgs == {"VCG async", "RepEx"}

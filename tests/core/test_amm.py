"""Tests for the Application Management Module."""

import numpy as np
import pytest

from repro.core.amm import ApplicationManager
from repro.core.config import DimensionSpec, ResourceSpec, SimulationConfig
from repro.md.perfmodel import deterministic_model
from repro.pilot.cluster import get_cluster
from repro.pilot.unit import ComputeUnit

from tests.conftest import small_tremd_config


def make_amm(config=None, cluster_name="supermic"):
    config = config or small_tremd_config()
    return ApplicationManager(
        config, get_cluster(cluster_name), perf=deterministic_model()
    )


class TestCreateReplicas:
    def test_lattice_count(self):
        cfg = small_tremd_config(
            dimensions=[
                DimensionSpec("temperature", 3, 273.0, 373.0),
                DimensionSpec("salt", 4, 0.0, 1.0),
            ],
            resource=ResourceSpec("supermic", cores=12),
        )
        amm = make_amm(cfg)
        reps = amm.create_replicas()
        assert len(reps) == 12
        combos = {
            (r.window("temperature"), r.window("salt")) for r in reps
        }
        assert len(combos) == 12

    def test_umbrella_replicas_start_at_window_center(self):
        cfg = small_tremd_config(
            dimensions=[
                DimensionSpec("umbrella", 4, 0.0, 360.0, angle="phi")
            ],
            resource=ResourceSpec("supermic", cores=4),
        )
        amm = make_amm(cfg)
        for rep in amm.create_replicas():
            center = float(
                amm.dimensions[0].value(rep.window("umbrella_phi"))
            )
            phi_deg = np.degrees(rep.coords[0]) % 360.0
            assert abs(phi_deg - center % 360.0) < 1e-6

    def test_deterministic_per_seed(self):
        a = make_amm().create_replicas()
        b = make_amm().create_replicas()
        for ra, rb in zip(a, b):
            assert np.allclose(ra.coords, rb.coords)


class TestStateOf:
    def test_state_composition(self):
        cfg = small_tremd_config(
            dimensions=[
                DimensionSpec("temperature", 2, 273.0, 373.0),
                DimensionSpec("salt", 2, 0.0, 1.0),
                DimensionSpec("umbrella", 2, 0.0, 360.0, angle="psi"),
            ],
            resource=ResourceSpec("supermic", cores=8),
        )
        amm = make_amm(cfg)
        rep = amm.create_replicas()[-1]  # all windows at max index
        state = amm.state_of(rep)
        assert state.temperature == pytest.approx(373.0)
        assert state.salt_molar == pytest.approx(1.0)
        assert len(state.restraints) == 1


class TestMDTask:
    def test_duration_matches_perf_anchor(self):
        amm = make_amm()
        rep = amm.create_replicas()[0]
        desc = amm.md_task(rep, cycle=0)
        # supermic speed factor 1.0, sander anchor
        assert desc.duration == pytest.approx(139.6 + 1.5, abs=0.5)

    def test_stampede_speed_factor_applied(self):
        cfg = small_tremd_config(resource=ResourceSpec("stampede", cores=4))
        amm = make_amm(cfg, cluster_name="stampede")
        rep = amm.create_replicas()[0]
        desc = amm.md_task(rep, cycle=0)
        assert desc.duration == pytest.approx(1.18 * (139.6 + 1.5), abs=1.0)

    def test_input_files_written(self):
        amm = make_amm()
        rep = amm.create_replicas()[0]
        amm.md_task(rep, cycle=0)
        tag = amm.md_tag(rep, 0)
        assert amm.sandbox.exists(f"{tag}.mdin")
        assert amm.sandbox.exists(f"{tag}.inpcrd")

    def test_metadata(self):
        amm = make_amm()
        rep = amm.create_replicas()[2]
        desc = amm.md_task(rep, cycle=3)
        assert desc.metadata == {"phase": "md", "rid": 2, "cycle": 3}

    def test_work_runs_engine(self):
        amm = make_amm()
        rep = amm.create_replicas()[0]
        desc = amm.md_task(rep, cycle=0)
        result = desc.work()
        assert result.n_steps == amm.config.effective_numeric_steps

    def test_staging_directives_present(self):
        amm = make_amm()
        rep = amm.create_replicas()[0]
        desc = amm.md_task(rep, cycle=0)
        assert len(desc.input_staging) >= 2
        assert len(desc.output_staging) == 2


class TestProcessOutput:
    def _run_one(self, amm, rep, cycle=0):
        desc = amm.md_task(rep, cycle)
        unit = ComputeUnit(desc)
        # drive the unit through its states by hand
        from repro.pilot.unit import UnitState

        unit.advance(UnitState.SCHEDULING, 0.0)
        unit.advance(UnitState.STAGING_INPUT, 0.1)
        unit.advance(UnitState.AGENT_EXECUTING_PENDING, 0.2)
        unit.advance(UnitState.EXECUTING, 0.3)
        unit.result = desc.work()
        unit.advance(UnitState.STAGING_OUTPUT, 10.0)
        unit.advance(UnitState.DONE, 10.1)
        return unit

    def test_success_updates_replica(self):
        amm = make_amm()
        rep = amm.create_replicas()[0]
        before = rep.coords.copy()
        unit = self._run_one(amm, rep)
        ok = amm.process_md_output(rep, unit, 0, "temperature")
        assert ok
        assert not np.allclose(rep.coords, before)
        assert "potential_energy" in rep.last_energies
        assert rep.cycle == 1
        assert len(rep.history) == 1
        assert rep.history[0].trajectory is not None

    def test_failure_keeps_coords(self):
        amm = make_amm()
        rep = amm.create_replicas()[0]
        desc = amm.md_task(rep, 0)
        unit = ComputeUnit(desc)
        from repro.pilot.unit import UnitState

        unit.advance(UnitState.SCHEDULING, 0.0)
        unit.advance(UnitState.STAGING_INPUT, 0.1)
        unit.advance(UnitState.AGENT_EXECUTING_PENDING, 0.2)
        unit.advance(UnitState.EXECUTING, 0.3)
        unit.advance(UnitState.FAILED, 5.0)
        before = rep.coords.copy()
        ok = amm.process_md_output(rep, unit, 0, "temperature")
        assert not ok
        assert np.allclose(rep.coords, before)
        assert rep.n_failures == 1
        assert rep.history[0].failed


class TestExchangeTask:
    def test_exchange_unit_shape(self):
        amm = make_amm()
        reps = amm.create_replicas()
        # give replicas energies as if MD ran
        for r in reps:
            r.last_energies = {"potential_energy": -100.0 - r.rid}
        desc = amm.exchange_task(reps, amm.dimensions[0], cycle=0)
        assert desc.cores == 1
        assert desc.metadata["phase"] == "exchange"
        proposals = desc.work()
        assert len(proposals) == 2  # 4 replicas, even pairing

    def test_apply_proposals_swaps_and_counts(self):
        amm = make_amm()
        reps = amm.create_replicas()
        for r in reps:
            r.last_energies = {"potential_energy": -100.0}
            r.history.append(
                __import__(
                    "repro.core.replica", fromlist=["CycleRecord"]
                ).CycleRecord(
                    0, "temperature", dict(r.param_indices), -100.0, 0.0
                )
            )
        from repro.core.exchange.base import SwapProposal

        p = SwapProposal(
            rid_i=0, rid_j=1, dimension="temperature", delta=-1.0,
            accepted=True,
        )
        amm.apply_proposals(reps, amm.dimensions[0], [p])
        assert reps[0].window("temperature") == 1
        assert reps[1].window("temperature") == 0
        stats = amm.exchange_stats["temperature"]
        assert stats.attempted == 1 and stats.accepted == 1
        assert reps[0].history[-1].partner == 1
        assert reps[0].history[-1].accepted


class TestSinglePointTasks:
    def test_one_task_per_replica_with_neighbor_states(self):
        cfg = small_tremd_config(
            dimensions=[DimensionSpec("salt", 4, 0.0, 1.0)],
            resource=ResourceSpec("supermic", cores=4),
        )
        amm = make_amm(cfg)
        reps = amm.create_replicas()
        descs = amm.single_point_tasks(reps, amm.dimensions[0], cycle=0)
        assert len(descs) == 4
        # edge replicas have 2 candidate windows, middle ones 3
        assert descs[0].cores == 2
        assert descs[1].cores == 3
        assert descs[-1].cores == 2
        assert all(d.metadata["phase"] == "single_point" for d in descs)

    def test_sp_work_returns_window_to_energy(self):
        cfg = small_tremd_config(
            dimensions=[DimensionSpec("salt", 3, 0.0, 1.0)],
            resource=ResourceSpec("supermic", cores=3),
        )
        amm = make_amm(cfg)
        reps = amm.create_replicas()
        descs = amm.single_point_tasks(reps, amm.dimensions[0], cycle=0)
        row = descs[1].work()  # middle replica
        assert set(row) == {0, 1, 2}
        for e in row.values():
            assert np.isfinite(e)

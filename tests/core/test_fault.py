"""Tests for fault policies."""

import numpy as np
import pytest

from repro.core.config import FailureSpec
from repro.core.fault import (
    ContinuePolicy,
    FaultAction,
    RelaunchPolicy,
    policy_from_spec,
)
from repro.core.replica import Replica


def rep():
    return Replica(rid=0, coords=np.zeros(2), param_indices={"t": 0})


class TestContinuePolicy:
    def test_always_continue(self):
        p = ContinuePolicy()
        for attempt in (1, 2, 10):
            assert p.on_failure(rep(), attempt) is FaultAction.CONTINUE


class TestRelaunchPolicy:
    def test_relaunch_until_budget(self):
        p = RelaunchPolicy(max_relaunches=2)
        assert p.on_failure(rep(), 1) is FaultAction.RELAUNCH
        assert p.on_failure(rep(), 2) is FaultAction.RELAUNCH
        assert p.on_failure(rep(), 3) is FaultAction.CONTINUE

    def test_zero_budget_means_continue(self):
        p = RelaunchPolicy(max_relaunches=0)
        assert p.on_failure(rep(), 1) is FaultAction.CONTINUE

    def test_validation(self):
        with pytest.raises(ValueError):
            RelaunchPolicy(max_relaunches=-1)


class TestFactory:
    def test_from_spec(self):
        assert isinstance(
            policy_from_spec(FailureSpec(policy="continue")), ContinuePolicy
        )
        p = policy_from_spec(
            FailureSpec(policy="relaunch", max_relaunches=5)
        )
        assert isinstance(p, RelaunchPolicy)
        assert p.max_relaunches == 5

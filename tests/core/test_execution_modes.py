"""Tests for Execution Modes I and II."""

import pytest

from repro.core.execution_modes import ModeI, ModeII, make_mode
from repro.pilot.pilot import PilotDescription
from repro.pilot.session import Session
from repro.pilot.unit import UnitDescription


def run_with_mode(mode, n_units=8, cores=4, duration=10.0, unit_cores=1):
    with Session() as s:
        pilot = s.submit_pilot(
            PilotDescription(resource="small-cluster", cores=cores)
        )
        s.wait_pilot(pilot)
        t0 = s.now
        descs = [
            UnitDescription(name=f"u{i}", cores=unit_cores, duration=duration)
            for i in range(n_units)
        ]
        units = mode.run_phase(s, pilot, descs)
        return units, s.now - t0


class TestModeI:
    def test_all_concurrent(self):
        units, span = run_with_mode(ModeI(), n_units=4, cores=4)
        assert all(u.succeeded for u in units)
        assert span < 2 * 10.0  # one wave only

    def test_empty_phase(self):
        with Session() as s:
            pilot = s.submit_pilot(
                PilotDescription(resource="small-cluster", cores=4)
            )
            s.wait_pilot(pilot)
            assert ModeI().run_phase(s, pilot, []) == []


class TestModeII:
    def test_oversubscribed_runs_in_waves(self):
        units, span = run_with_mode(
            ModeII(wave_gap_s=0.0), n_units=8, cores=4
        )
        assert all(u.succeeded for u in units)
        assert span >= 2 * 10.0  # two waves of 10 s

    def test_wave_gap_charged(self):
        _, span_nogap = run_with_mode(
            ModeII(wave_gap_s=0.0), n_units=8, cores=4
        )
        _, span_gap = run_with_mode(
            ModeII(wave_gap_s=5.0), n_units=8, cores=4
        )
        assert span_gap == pytest.approx(span_nogap + 5.0, abs=0.5)

    def test_multicore_units_batch_correctly(self):
        units, span = run_with_mode(
            ModeII(wave_gap_s=0.0),
            n_units=4,
            cores=4,
            unit_cores=2,
            duration=10.0,
        )
        assert all(u.succeeded for u in units)
        assert span >= 2 * 10.0  # 2 units per wave

    def test_n_waves_helper(self):
        assert ModeII.n_waves(1728, 1, 112) == 16
        assert ModeII.n_waves(1728, 1, 1728) == 1
        assert ModeII.n_waves(216, 64, 13824) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ModeII(wave_gap_s=-1.0)


class TestFactory:
    def test_make_mode(self):
        assert isinstance(make_mode("I"), ModeI)
        assert isinstance(make_mode("II"), ModeII)
        assert make_mode("II", wave_gap_s=3.0).wave_gap_s == 3.0

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_mode("III")

"""Tests for the Metropolis machinery."""

import math

import numpy as np
import pytest

from repro.core.exchange.base import metropolis_accept, metropolis_delta


class TestMetropolisDelta:
    def test_symmetric_states_zero(self):
        d = metropolis_delta(1.0, 1.0, -5.0, -5.0, -5.0, -5.0)
        assert d == 0.0

    def test_temperature_reduction(self):
        """With equal Hamiltonians the general form reduces to
        (beta_i - beta_j)(U_j - U_i)."""
        beta_i, beta_j = 1.8, 1.5
        u_i, u_j = -10.0, -7.0
        d = metropolis_delta(beta_i, beta_j, u_i, u_j, u_i, u_j)
        assert d == pytest.approx((beta_i - beta_j) * (u_j - u_i))

    def test_sign_convention(self):
        """A swap lowering total weighted energy has negative delta."""
        # state i (cold) holds high-energy config, j (hot) holds low:
        # swapping is favourable
        d = metropolis_delta(2.0, 1.0, 10.0, 0.0, 0.0, 10.0)
        # beta_i (E_i(x_j) - E_i(x_i)) + beta_j (E_j(x_i) - E_j(x_j))
        assert d == pytest.approx(2.0 * (0 - 10) + 1.0 * (0 - 10))
        assert d < 0  # favourable swap


class TestMetropolisAccept:
    def test_negative_delta_always_accepts(self, rng):
        assert metropolis_accept(-0.1, rng)
        assert metropolis_accept(0.0, rng)

    def test_huge_delta_never_accepts(self, rng):
        assert not any(metropolis_accept(500.0, rng) for _ in range(100))

    def test_overflow_safe(self, rng):
        assert metropolis_accept(1e9, rng) is False

    def test_acceptance_rate_matches_boltzmann(self):
        rng = np.random.default_rng(3)
        delta = 1.2
        n = 20000
        rate = sum(metropolis_accept(delta, rng) for _ in range(n)) / n
        assert rate == pytest.approx(math.exp(-delta), abs=0.01)

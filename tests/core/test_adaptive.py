"""Tests for adaptive sampling (replica termination + spawning)."""

import numpy as np
import pytest

from repro.core import RepEx
from repro.core.adaptive import (
    AdaptiveSpec,
    CloneDonorPolicy,
    EnergyPlateauCriterion,
    NeverTerminate,
    NoSpawn,
    build_adaptive,
)
from repro.core.config import (
    ConfigError,
    DimensionSpec,
    PatternSpec,
    ResourceSpec,
)
from repro.core.replica import CycleRecord, Replica, ReplicaStatus

from tests.conftest import small_tremd_config


def replica_with_energies(rid, energies):
    rep = Replica(
        rid=rid, coords=np.zeros(2), param_indices={"temperature": 0}
    )
    for c, e in enumerate(energies):
        rep.history.append(
            CycleRecord(c, "temperature", {"temperature": 0}, e, 0.0)
        )
    return rep


class TestEnergyPlateauCriterion:
    def test_flat_history_terminates(self):
        crit = EnergyPlateauCriterion(window=3, tolerance=0.5)
        rep = replica_with_energies(0, [10.0, 10.1, 10.05, 10.02])
        assert crit.should_terminate(rep)

    def test_noisy_history_continues(self):
        crit = EnergyPlateauCriterion(window=3, tolerance=0.5)
        rep = replica_with_energies(0, [10.0, 14.0, 7.0, 12.0])
        assert not crit.should_terminate(rep)

    def test_short_history_continues(self):
        crit = EnergyPlateauCriterion(window=4, tolerance=0.5)
        rep = replica_with_energies(0, [10.0, 10.0])
        assert not crit.should_terminate(rep)

    def test_failed_cycles_ignored(self):
        crit = EnergyPlateauCriterion(window=3, tolerance=0.5)
        rep = replica_with_energies(0, [10.0, 10.0, 10.0])
        rep.history[1].failed = True
        assert not crit.should_terminate(rep)  # only 2 usable cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyPlateauCriterion(window=1)
        with pytest.raises(ValueError):
            EnergyPlateauCriterion(tolerance=-1.0)


class TestSpawnPolicies:
    def test_clone_donor_keeps_lattice_point(self, rng):
        retired = replica_with_energies(0, [1.0])
        retired.param_indices = {"temperature": 3}
        donor = Replica(
            rid=1, coords=np.array([1.0, -1.0]),
            param_indices={"temperature": 5},
        )
        fresh = CloneDonorPolicy().spawn(retired, [donor], 7, rng)
        assert fresh.rid == 7
        assert fresh.param_indices == {"temperature": 3}
        assert np.allclose(fresh.coords, donor.coords, atol=0.5)

    def test_clone_falls_back_to_retiree(self, rng):
        retired = replica_with_energies(0, [1.0])
        fresh = CloneDonorPolicy().spawn(retired, [], 1, rng)
        assert fresh is not None

    def test_no_spawn(self, rng):
        assert NoSpawn().spawn(replica_with_energies(0, []), [], 1, rng) is None


class TestBuildAdaptive:
    def test_disabled_is_inert(self):
        crit, policy = build_adaptive(AdaptiveSpec(enabled=False))
        assert isinstance(crit, NeverTerminate)
        assert isinstance(policy, NoSpawn)

    def test_enabled_with_tolerance(self):
        crit, policy = build_adaptive(
            AdaptiveSpec(enabled=True, energy_tolerance=1.0)
        )
        assert isinstance(crit, EnergyPlateauCriterion)
        assert isinstance(policy, CloneDonorPolicy)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSpec(min_cycles=0)
        with pytest.raises(ValueError):
            AdaptiveSpec(max_spawns=-1)


def adaptive_config(**over):
    defaults = dict(
        dimensions=[DimensionSpec("temperature", 6, 290.0, 315.0)],
        resource=ResourceSpec("supermic", cores=6),
        pattern=PatternSpec(kind="asynchronous", window_seconds=60.0),
        adaptive=AdaptiveSpec(
            enabled=True,
            min_cycles=2,
            energy_tolerance=1000.0,  # generous: retire fast in tests
            spawn_replacements=True,
        ),
        n_cycles=6,
        numeric_steps=20,
    )
    defaults.update(over)
    return small_tremd_config(**defaults)


class TestAdaptiveRuns:
    def test_requires_async_pattern(self):
        with pytest.raises(ConfigError, match="asynchronous"):
            adaptive_config(pattern=PatternSpec(kind="synchronous"))

    def test_replicas_retire_early(self):
        res = RepEx(adaptive_config()).run()
        assert res.n_retired > 0
        retired = [
            r for r in res.replicas if r.status is ReplicaStatus.RETIRED
        ]
        assert len(retired) == res.n_retired
        for rep in retired:
            assert len(rep.history) < 6

    def test_spawns_refill_lattice(self):
        res = RepEx(adaptive_config()).run()
        assert res.n_spawned > 0
        # active replicas still tile the ladder (retired + spawned balance)
        active = [
            r for r in res.replicas if r.status is ReplicaStatus.ACTIVE
        ]
        windows = sorted(r.window("temperature") for r in active)
        assert windows == list(range(6))

    def test_no_spawn_variant_shrinks_ensemble(self):
        res = RepEx(
            adaptive_config(
                adaptive=AdaptiveSpec(
                    enabled=True,
                    min_cycles=2,
                    energy_tolerance=1000.0,
                    spawn_replacements=False,
                )
            )
        ).run()
        assert res.n_retired > 0
        assert res.n_spawned == 0
        active = [
            r for r in res.replicas if r.status is ReplicaStatus.ACTIVE
        ]
        assert len(active) < 6

    def test_spawn_cap_respected(self):
        res = RepEx(
            adaptive_config(
                adaptive=AdaptiveSpec(
                    enabled=True,
                    min_cycles=2,
                    energy_tolerance=1000.0,
                    spawn_replacements=True,
                    max_spawns=1,
                )
            )
        ).run()
        assert res.n_spawned <= 1

    def test_strict_tolerance_never_retires(self):
        res = RepEx(
            adaptive_config(
                adaptive=AdaptiveSpec(
                    enabled=True,
                    min_cycles=2,
                    energy_tolerance=1e-12,
                )
            )
        ).run()
        assert res.n_retired == 0
        for rep in res.replicas:
            assert len(rep.history) == 6

    def test_config_roundtrip_with_adaptive(self):
        cfg = adaptive_config()
        from repro.core.config import SimulationConfig

        again = SimulationConfig.from_dict(cfg.to_dict())
        assert again.adaptive.enabled
        assert again.adaptive.energy_tolerance == 1000.0

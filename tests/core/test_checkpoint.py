"""Checkpoint capture, (de)serialization and validation."""

import json

import pytest

from repro.core import RepEx
from repro.core.checkpoint import SCHEMA_VERSION, Checkpoint, CheckpointError
from repro.core.config import PatternSpec
from tests.conftest import small_tremd_config


def checkpointed_run(tmp_path, **over):
    config = small_tremd_config(n_cycles=4, **over)
    repex = RepEx(
        config, checkpoint_every=2, checkpoint_dir=tmp_path / "ckpts"
    )
    result = repex.run()
    return repex, result


class TestCapture:
    def test_checkpoints_taken_at_cycle_boundaries(self, tmp_path):
        repex, result = checkpointed_run(tmp_path)
        assert [c.next_cycle for c in repex.checkpoints] == [2]
        ckpt = repex.checkpoints[0]
        assert ckpt.title == "test-tremd"
        assert ckpt.schema_version == SCHEMA_VERSION
        assert len(ckpt.replicas) == 4
        # two cycles of history captured per replica
        assert all(len(r["history"]) == 2 for r in ckpt.replicas)
        assert 0 < ckpt.t_now <= result.t_end

    def test_files_written(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        ckpt_dir = tmp_path / "ckpts"
        assert (ckpt_dir / "cycle_0002.json").exists()
        assert (ckpt_dir / "latest.json").exists()
        assert (
            (ckpt_dir / "latest.json").read_text()
            == (ckpt_dir / "cycle_0002.json").read_text()
        )

    def test_every_cycle_when_asked(self, tmp_path):
        config = small_tremd_config(n_cycles=4)
        repex = RepEx(config, checkpoint_every=1)
        repex.run()
        # no snapshot after the final cycle: nothing left to resume
        assert [c.next_cycle for c in repex.checkpoints] == [1, 2, 3]

    def test_disabled_by_default(self):
        repex = RepEx(small_tremd_config())
        repex.run()
        assert repex.checkpoints == []


class TestRoundTrip:
    def test_json_round_trip_is_identical(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        ckpt = repex.checkpoints[0]
        clone = Checkpoint.from_json(ckpt.to_json())
        assert clone.to_json() == ckpt.to_json()
        assert clone.t_now == ckpt.t_now
        assert clone.rng == ckpt.rng

    def test_load_save_round_trip(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        loaded = Checkpoint.load(tmp_path / "ckpts" / "latest.json")
        assert loaded.to_json() == repex.checkpoints[0].to_json()


class TestValidation:
    def test_rejects_other_schema_version(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        data = json.loads(repex.checkpoints[0].to_json())
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(CheckpointError, match="schema version"):
            Checkpoint.from_json(json.dumps(data))

    def test_rejects_invalid_json(self):
        with pytest.raises(CheckpointError, match="invalid checkpoint JSON"):
            Checkpoint.from_json("{not json")
        with pytest.raises(CheckpointError, match="JSON object"):
            Checkpoint.from_json("[1, 2]")

    def test_rejects_unknown_fields(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        data = json.loads(repex.checkpoints[0].to_json())
        data["surprise"] = 1
        with pytest.raises(CheckpointError, match="malformed"):
            Checkpoint.from_json(json.dumps(data))

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            Checkpoint.load(tmp_path / "nope.json")

    def test_resume_rejects_config_mismatch(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        other = small_tremd_config(n_cycles=4, seed=999)
        resumed = RepEx(
            other, resume_from=tmp_path / "ckpts" / "latest.json"
        )
        with pytest.raises(CheckpointError, match="different configuration"):
            resumed.run()

    def test_resume_rejects_completed_checkpoint(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        ckpt = repex.checkpoints[0]  # next_cycle=2
        same = small_tremd_config(n_cycles=4)
        ckpt_done = Checkpoint.from_json(ckpt.to_json())
        ckpt_done.next_cycle = 4
        resumed = RepEx(same, resume_from=ckpt_done)
        with pytest.raises(CheckpointError, match="already complete"):
            resumed.run()

    def test_negative_checkpoint_every_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            RepEx(small_tremd_config(), checkpoint_every=-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"checkpoint_every": 1},
            {"stop_after_cycle": 1},
        ],
    )
    def test_async_pattern_cannot_checkpoint(self, kwargs):
        config = small_tremd_config(pattern=PatternSpec(kind="asynchronous"))
        with pytest.raises(CheckpointError, match="synchronous"):
            RepEx(config, **kwargs)

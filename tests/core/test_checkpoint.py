"""Checkpoint capture, (de)serialization and validation."""

import json

import pytest

from repro.core import RepEx
from repro.core.checkpoint import (
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    Checkpoint,
    CheckpointError,
)
from repro.core.config import PatternSpec
from tests.conftest import small_tremd_config


def checkpointed_run(tmp_path, **over):
    config = small_tremd_config(n_cycles=4, **over)
    repex = RepEx(
        config, checkpoint_every=2, checkpoint_dir=tmp_path / "ckpts"
    )
    result = repex.run()
    return repex, result


def async_checkpointed_run(tmp_path, **kwargs):
    config = small_tremd_config(
        n_cycles=4, pattern=PatternSpec(kind="asynchronous")
    )
    repex = RepEx(
        config,
        checkpoint_every_s=150.0,
        checkpoint_dir=tmp_path / "ckpts",
        **kwargs,
    )
    result = repex.run()
    return repex, result


class TestCapture:
    def test_checkpoints_taken_at_cycle_boundaries(self, tmp_path):
        repex, result = checkpointed_run(tmp_path)
        assert [c.next_cycle for c in repex.checkpoints] == [2]
        ckpt = repex.checkpoints[0]
        assert ckpt.title == "test-tremd"
        assert ckpt.schema_version == SCHEMA_VERSION
        assert len(ckpt.replicas) == 4
        # two cycles of history captured per replica
        assert all(len(r["history"]) == 2 for r in ckpt.replicas)
        assert 0 < ckpt.t_now <= result.t_end

    def test_files_written(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        ckpt_dir = tmp_path / "ckpts"
        assert (ckpt_dir / "cycle_0002.json").exists()
        assert (ckpt_dir / "latest.json").exists()
        assert (
            (ckpt_dir / "latest.json").read_text()
            == (ckpt_dir / "cycle_0002.json").read_text()
        )

    def test_every_cycle_when_asked(self, tmp_path):
        config = small_tremd_config(n_cycles=4)
        repex = RepEx(config, checkpoint_every=1)
        repex.run()
        # no snapshot after the final cycle: nothing left to resume
        assert [c.next_cycle for c in repex.checkpoints] == [1, 2, 3]

    def test_disabled_by_default(self):
        repex = RepEx(small_tremd_config())
        repex.run()
        assert repex.checkpoints == []


class TestRoundTrip:
    def test_json_round_trip_is_identical(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        ckpt = repex.checkpoints[0]
        clone = Checkpoint.from_json(ckpt.to_json())
        assert clone.to_json() == ckpt.to_json()
        assert clone.t_now == ckpt.t_now
        assert clone.rng == ckpt.rng

    def test_load_save_round_trip(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        loaded = Checkpoint.load(tmp_path / "ckpts" / "latest.json")
        assert loaded.to_json() == repex.checkpoints[0].to_json()


class TestValidation:
    def test_rejects_other_schema_version(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        data = json.loads(repex.checkpoints[0].to_json())
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(CheckpointError, match="schema version"):
            Checkpoint.from_json(json.dumps(data))

    def test_rejects_invalid_json(self):
        with pytest.raises(CheckpointError, match="invalid checkpoint JSON"):
            Checkpoint.from_json("{not json")
        with pytest.raises(CheckpointError, match="JSON object"):
            Checkpoint.from_json("[1, 2]")

    def test_rejects_unknown_fields(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        data = json.loads(repex.checkpoints[0].to_json())
        data["surprise"] = 1
        with pytest.raises(CheckpointError, match="malformed"):
            Checkpoint.from_json(json.dumps(data))

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            Checkpoint.load(tmp_path / "nope.json")

    def test_resume_rejects_config_mismatch(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        other = small_tremd_config(n_cycles=4, seed=999)
        resumed = RepEx(
            other, resume_from=tmp_path / "ckpts" / "latest.json"
        )
        with pytest.raises(CheckpointError, match="different configuration"):
            resumed.run()

    def test_resume_rejects_completed_checkpoint(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        ckpt = repex.checkpoints[0]  # next_cycle=2
        same = small_tremd_config(n_cycles=4)
        ckpt_done = Checkpoint.from_json(ckpt.to_json())
        ckpt_done.next_cycle = 4
        resumed = RepEx(same, resume_from=ckpt_done)
        with pytest.raises(CheckpointError, match="already complete"):
            resumed.run()

    def test_negative_checkpoint_every_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            RepEx(small_tremd_config(), checkpoint_every=-1)
        with pytest.raises(ValueError, match="checkpoint_every_s"):
            RepEx(small_tremd_config(), checkpoint_every_s=-1.0)
        with pytest.raises(ValueError, match="checkpoint_keep"):
            RepEx(small_tremd_config(), checkpoint_keep=-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"checkpoint_every": 1},
            {"stop_after_cycle": 1},
        ],
    )
    def test_async_pattern_rejects_cycle_granular_flags(self, kwargs):
        config = small_tremd_config(pattern=PatternSpec(kind="asynchronous"))
        with pytest.raises(CheckpointError, match="synchronous"):
            RepEx(config, **kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"checkpoint_every_s": 100.0},
            {"stop_after_checkpoint": 1},
        ],
    )
    def test_sync_pattern_rejects_quiesce_flags(self, kwargs):
        with pytest.raises(CheckpointError, match="quiesce"):
            RepEx(small_tremd_config(), **kwargs)


class TestContentChecksum:
    """Silent corruption — bit flips that still parse — must not load."""

    def test_every_snapshot_carries_a_checksum(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        data = json.loads(repex.checkpoints[0].to_json())
        assert data["checksum"] == Checkpoint._content_checksum(data)

    def test_bit_flip_in_a_value_is_rejected(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        data = json.loads(repex.checkpoints[0].to_json())
        # structurally valid, physically wrong: exactly what a flipped
        # bit on disk looks like after it survives the JSON parser
        data["accounting"]["n_failures"] += 1
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            Checkpoint.from_json(json.dumps(data))

    def test_corrupted_file_error_names_the_path(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        path = tmp_path / "ckpts" / "latest.json"
        data = json.loads(path.read_text())
        data["next_cycle"] += 1
        path.write_text(json.dumps(data))
        with pytest.raises(
            CheckpointError, match=rf"corrupt checkpoint at {path}"
        ):
            Checkpoint.load(path)

    def test_truncated_file_error_names_the_path(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        path = tmp_path / "ckpts" / "latest.json"
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(
            CheckpointError, match=rf"corrupt checkpoint at {path}"
        ):
            Checkpoint.load(path)

    def test_checksumless_v2_file_still_loads(self, tmp_path):
        # snapshots written before the checksum existed have no field to
        # verify; they load on trust like they always did
        repex, _ = checkpointed_run(tmp_path)
        data = json.loads(repex.checkpoints[0].to_json())
        del data["checksum"]
        ckpt = Checkpoint.from_json(json.dumps(data))
        assert ckpt.checksum is None


class TestAsyncCheckpoint:
    def test_quiesce_snapshots_written(self, tmp_path):
        repex, result = async_checkpointed_run(tmp_path)
        assert len(repex.checkpoints) >= 2
        ckpt_dir = tmp_path / "ckpts"
        for i, ckpt in enumerate(repex.checkpoints, start=1):
            assert ckpt.pattern == "asynchronous"
            assert ckpt.schema_version == SCHEMA_VERSION
            assert ckpt.async_state is not None
            assert (ckpt_dir / f"quiesce_{i:04d}.json").exists()
        assert (
            (ckpt_dir / "latest.json").read_text()
            == (
                ckpt_dir / f"quiesce_{len(repex.checkpoints):04d}.json"
            ).read_text()
        )

    def test_async_state_block_is_consistent(self, tmp_path):
        repex, _ = async_checkpointed_run(tmp_path)
        state = repex.checkpoints[0].async_state
        assert state["n_quiesces"] == 1
        cycles_done = {int(k): v for k, v in state["cycles_done"].items()}
        assert set(cycles_done) == {0, 1, 2, 3}
        # nothing is in flight at the quiet point, so every replica is
        # parked either in the exchange-candidate pool or the deferred
        # launch queue (order is part of the snapshot: it pins event
        # sequencing on resume)
        parked = set(state["pool"]) | set(state["deferred"])
        assert parked <= set(cycles_done)
        assert repex.checkpoints[0].next_cycle == min(cycles_done.values())

    def test_stop_after_checkpoint_interrupts(self, tmp_path):
        repex, result = async_checkpointed_run(
            tmp_path, stop_after_checkpoint=1
        )
        assert result.interrupted
        assert len(repex.checkpoints) == 1

    def test_capture_async_requires_full_state_block(self, tmp_path):
        repex, _ = async_checkpointed_run(tmp_path)
        ckpt = repex.checkpoints[0]
        data = json.loads(ckpt.to_json())
        del data["async_state"]["pool"]
        with pytest.raises(CheckpointError, match="pool"):
            Checkpoint.from_json(json.dumps(data))

    def test_pattern_mismatch_rejected_both_ways(self, tmp_path):
        sync_repex, _ = checkpointed_run(tmp_path / "s")
        async_repex, _ = async_checkpointed_run(tmp_path / "a")
        sync_ckpt = sync_repex.checkpoints[0]
        async_ckpt = async_repex.checkpoints[0]
        async_cfg = small_tremd_config(
            n_cycles=4, pattern=PatternSpec(kind="asynchronous")
        )
        with pytest.raises(CheckpointError, match="pattern"):
            RepEx(async_cfg, resume_from=sync_ckpt)
        with pytest.raises(CheckpointError, match="pattern"):
            RepEx(small_tremd_config(n_cycles=4), resume_from=async_ckpt)

    def test_obs_blob_captured(self, tmp_path):
        repex, _ = async_checkpointed_run(tmp_path)
        obs = repex.checkpoints[0].obs
        assert obs is not None
        assert obs["registry"]["counters"]["checkpoint.captured"] == 1.0
        assert obs["tracer"], "unit trace must be captured"


class TestSchemaV1Upgrade:
    def v1_text(self, tmp_path):
        """A v2 sync snapshot stripped down to the v1 field set."""
        repex, _ = checkpointed_run(tmp_path)
        data = json.loads(repex.checkpoints[0].to_json())
        data["schema_version"] = 1
        for field in ("pattern", "async_state", "obs"):
            del data[field]
        # v1 accounting predates adaptive-sampling bookkeeping
        del data["accounting"]["n_retired"]
        del data["accounting"]["n_spawned"]
        return json.dumps(data)

    def test_v1_loads_as_synchronous(self, tmp_path):
        ckpt = Checkpoint.from_json(self.v1_text(tmp_path))
        assert ckpt.pattern == "synchronous"
        assert ckpt.async_state is None
        assert ckpt.obs is None

    def test_v1_resumes(self, tmp_path):
        baseline = RepEx(small_tremd_config(n_cycles=4)).run()
        path = tmp_path / "v1.json"
        path.write_text(self.v1_text(tmp_path))
        resumed = RepEx(
            small_tremd_config(n_cycles=4), resume_from=path
        ).run()
        # v1 has no obs blob, so only the physics is comparable
        assert resumed.fingerprint() == baseline.fingerprint()

    def test_supported_versions_documented(self):
        assert SUPPORTED_VERSIONS == (1, 2)
        assert SCHEMA_VERSION == 2


class TestAtomicSave:
    def test_no_tmp_files_left_behind(self, tmp_path):
        repex, _ = checkpointed_run(tmp_path)
        assert not list((tmp_path / "ckpts").glob("*.tmp"))

    def test_failed_write_preserves_existing_snapshot(
        self, tmp_path, monkeypatch
    ):
        repex, _ = checkpointed_run(tmp_path)
        target = tmp_path / "ckpts" / "latest.json"
        before = target.read_text()

        import repro.core.checkpoint as ckpt_mod

        def exploding_replace(src, dst):
            raise OSError("kill between write and rename")

        monkeypatch.setattr(ckpt_mod.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            repex.checkpoints[0].save(target)
        # the half-written data never reached the real name
        assert target.read_text() == before
        Checkpoint.load(target)

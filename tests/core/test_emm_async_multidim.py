"""Async pattern with multiple dimensions: sweeps rotate the dimension."""

import pytest

from repro.core import RepEx
from repro.core.config import (
    DimensionSpec,
    PatternSpec,
    ResourceSpec,
)

from tests.conftest import small_tremd_config


def async_tu_config(**over):
    defaults = dict(
        dimensions=[
            DimensionSpec("temperature", 2, 290.0, 310.0),
            DimensionSpec(
                "umbrella", 2, 0.0, 360.0, angle="phi",
                force_constant=0.0005,
            ),
        ],
        resource=ResourceSpec("supermic", cores=4),
        pattern=PatternSpec(kind="asynchronous", window_seconds=60.0),
        n_cycles=6,
    )
    defaults.update(over)
    return small_tremd_config(**defaults)


class TestAsyncMultiDim:
    def test_both_dimensions_exchange(self):
        res = RepEx(async_tu_config()).run()
        assert res.exchange_stats["temperature"].attempted > 0
        assert res.exchange_stats["umbrella_phi"].attempted > 0

    def test_sweep_dimensions_rotate(self):
        res = RepEx(async_tu_config()).run()
        dims = [c.dimension for c in res.cycle_timings]
        assert len(set(dims)) == 2
        # consecutive sweeps use consecutive dimensions of the schedule
        for a, b in zip(dims, dims[1:]):
            assert a != b

    def test_window_multisets_conserved_per_dim(self):
        res = RepEx(async_tu_config()).run()
        for dim in ("temperature", "umbrella_phi"):
            per_other = {}
            for r in res.replicas:
                per_other.setdefault(r.group_key(dim), []).append(
                    r.window(dim)
                )
            for windows in per_other.values():
                assert sorted(windows) == [0, 1]

    def test_every_replica_finishes_budget(self):
        res = RepEx(async_tu_config()).run()
        for rep in res.replicas:
            assert len(rep.history) == 6

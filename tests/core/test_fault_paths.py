"""Fault-path accounting: cores and counters stay consistent under kills.

The paper's fault-tolerance requirement is that replica failures never
poison the pilot: every killed unit must release its cores, relaunches
must respect the policy budget, and the observability counters must agree
with the EMM's own failure accounting.
"""

import pytest

from repro.core import RepEx
from repro.core.config import FailureSpec
from repro.obs.metrics import MetricsRegistry, using_registry
from tests.conftest import small_tremd_config


def faulty_config(probability, policy="relaunch", max_relaunches=2, **over):
    return small_tremd_config(
        failure=FailureSpec(
            probability=probability,
            policy=policy,
            max_relaunches=max_relaunches,
        ),
        **over,
    )


def run_faulty(config):
    registry = MetricsRegistry()
    with using_registry(registry):
        repex = RepEx(config)
        result = repex.run()
    return registry, repex, result


class TestCoreAccounting:
    def test_total_failure_releases_every_core(self):
        """probability=1.0: every MD attempt dies, nothing may leak."""
        registry, repex, result = run_faulty(faulty_config(1.0))
        scheduler = repex.pilot.scheduler
        assert scheduler.n_running == 0
        assert scheduler.used_cores == 0
        assert scheduler.free_cores == scheduler.capacity
        assert scheduler.free_gpus == scheduler.gpu_capacity
        assert result.n_failures > 0

    def test_partial_failure_no_core_leak(self):
        registry, repex, result = run_faulty(faulty_config(0.5))
        scheduler = repex.pilot.scheduler
        assert scheduler.n_running == 0
        assert scheduler.used_cores == 0
        assert 0 < result.n_failures
        # relaunches eventually succeeded: every replica finished its cycles
        for rep in result.replicas:
            assert len(rep.history) == 2

    def test_unit_counters_balance_under_failures(self):
        registry, _, result = run_faulty(faulty_config(0.5))
        counters = registry.snapshot()["counters"]
        assert counters["scheduler.submitted"] == (
            counters["scheduler.completed"]
            + counters["scheduler.failed"]
            + counters["scheduler.canceled"]
        )
        assert counters["scheduler.failed"] == result.n_failures

    def test_gauges_drain_after_faulty_run(self):
        registry, _, _ = run_faulty(faulty_config(1.0))
        gauges = registry.snapshot()["gauges"]
        assert gauges["scheduler.queue_depth"] == 0
        assert gauges["scheduler.used_cores"] == 0


class TestRelaunchBudget:
    def test_exhaustion_stops_at_max_relaunches(self):
        """With every attempt failing, each replica is relaunched exactly
        max_relaunches times per cycle, then the policy gives up."""
        config = faulty_config(1.0, max_relaunches=2)
        _, _, result = run_faulty(config)
        n = config.n_replicas * config.n_cycles
        assert result.n_relaunches == 2 * n
        assert result.n_failures == 3 * n  # initial + 2 relaunches

    def test_zero_budget_never_relaunches(self):
        _, _, result = run_faulty(faulty_config(1.0, max_relaunches=0))
        assert result.n_relaunches == 0
        assert result.n_failures == 4 * 2  # one per replica per cycle

    def test_continue_policy_never_relaunches(self):
        _, _, result = run_faulty(faulty_config(1.0, policy="continue"))
        assert result.n_relaunches == 0

    def test_simulation_records_every_cycle_despite_failures(self):
        _, _, result = run_faulty(faulty_config(1.0))
        assert len(result.cycle_timings) == 2
        assert result.exchange_stats["temperature"].attempted == 0


class TestFailureMetrics:
    def test_emm_counters_match_result(self):
        registry, _, result = run_faulty(faulty_config(1.0))
        counters = registry.snapshot()["counters"]
        assert counters["emm.failures"] == result.n_failures
        assert counters["emm.relaunches"] == result.n_relaunches

    def test_manifest_survives_faulty_run(self):
        _, _, result = run_faulty(faulty_config(1.0))
        manifest = result.manifest
        assert manifest is not None
        assert manifest.metrics["counters"]["emm.failures"] == (
            result.n_failures
        )
        states = {state for _, _, state in manifest.timeline}
        assert "FAILED" in states

    def test_healthy_run_reports_no_failures(self):
        registry, _, result = run_faulty(faulty_config(0.0))
        counters = registry.snapshot()["counters"]
        assert result.n_failures == 0
        assert counters.get("emm.failures", 0) == 0
        assert counters.get("scheduler.failed", 0) == 0

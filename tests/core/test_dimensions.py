"""Tests for the four exchange dimensions."""

import math

import numpy as np
import pytest

from repro.core.exchange.ph import PHDimension
from repro.core.exchange.salt import SaltDimension
from repro.core.exchange.temperature import TemperatureDimension
from repro.core.exchange.umbrella import UmbrellaDimension
from repro.core.replica import Replica
from repro.md.toymd import ThermodynamicState
from repro.utils.units import beta_from_temperature


def make_rep(rid, coords=(0.0, 0.0), energies=None, **indices):
    r = Replica(
        rid=rid, coords=np.asarray(coords, dtype=float),
        param_indices=dict(indices),
    )
    r.last_energies = energies or {}
    return r


class TestTemperatureDimension:
    def test_geometric_factory(self):
        d = TemperatureDimension.geometric(273.0, 373.0, 6)
        assert d.n_windows == 6
        assert d.code == "T"
        assert d.value(0) == pytest.approx(273.0)
        assert d.value(5) == pytest.approx(373.0)

    def test_apply_sets_temperature(self):
        d = TemperatureDimension.geometric(273.0, 373.0, 4)
        s = d.apply(ThermodynamicState(), 3)
        assert s.temperature == pytest.approx(373.0)

    def test_index_out_of_range(self):
        d = TemperatureDimension([300.0])
        with pytest.raises(IndexError):
            d.value(1)

    def test_rejects_bad_temperatures(self):
        with pytest.raises(ValueError):
            TemperatureDimension([300.0, -10.0])
        with pytest.raises(ValueError):
            TemperatureDimension([])

    def test_exchange_delta_formula(self):
        d = TemperatureDimension([300.0, 330.0])
        ri = make_rep(0, energies={"potential_energy": -100.0}, temperature=0)
        rj = make_rep(1, energies={"potential_energy": -80.0}, temperature=1)
        states = {0: ThermodynamicState(300.0), 1: ThermodynamicState(330.0)}
        delta = d.exchange_delta(
            ri, rj, window_i=0, window_j=1, states=states
        )
        bi, bj = beta_from_temperature(300.0), beta_from_temperature(330.0)
        assert delta == pytest.approx((bi - bj) * (-80.0 - (-100.0)))

    def test_no_single_point_needed(self):
        assert TemperatureDimension([300.0]).requires_single_point is False


class TestUmbrellaDimension:
    def test_uniform_factory(self):
        d = UmbrellaDimension.uniform(8, angle="phi")
        assert d.n_windows == 8
        assert d.values == [0.0, 45.0, 90.0, 135.0, 180.0, 225.0, 270.0, 315.0]
        assert d.code == "U"

    def test_name_includes_angle(self):
        assert UmbrellaDimension.uniform(4, angle="psi").name == "umbrella_psi"

    def test_apply_replaces_own_angle_only(self):
        d_phi = UmbrellaDimension.uniform(8, angle="phi")
        d_psi = UmbrellaDimension.uniform(8, angle="psi")
        s = ThermodynamicState()
        s = d_phi.apply(s, 2)
        s = d_psi.apply(s, 3)
        assert len(s.restraints) == 2
        s = d_phi.apply(s, 5)  # re-apply phi: psi restraint preserved
        assert len(s.restraints) == 2
        angles = {r.angle for r in s.restraints}
        assert angles == {"phi", "psi"}

    def test_exchange_delta_cross_terms(self):
        d = UmbrellaDimension([0.0, 45.0], angle="phi", force_constant=0.01)
        # replica i at its center, replica j at i's center too (i.e. far
        # from its own window): swap is favourable
        ri = make_rep(0, coords=np.radians([0.0, 0.0]), umbrella_phi=0)
        rj = make_rep(1, coords=np.radians([0.0, 0.0]), umbrella_phi=1)
        states = {
            0: ThermodynamicState(300.0),
            1: ThermodynamicState(300.0),
        }
        delta = d.exchange_delta(
            ri, rj, window_i=0, window_j=1, states=states
        )
        beta = beta_from_temperature(300.0)
        # W_i(x_j)=0, W_i(x_i)=0, W_j(x_i)=k*45^2, W_j(x_j)=k*45^2
        assert delta == pytest.approx(0.0, abs=1e-9)

        # now j actually sits at its own center
        rj2 = make_rep(1, coords=np.radians([45.0, 0.0]), umbrella_phi=1)
        delta2 = d.exchange_delta(
            ri, rj2, window_i=0, window_j=1, states=states
        )
        # W_i(x_j) = k 45^2, W_i(x_i) = 0, W_j(x_i) = k 45^2, W_j(x_j) = 0
        assert delta2 == pytest.approx(beta * 2 * 0.01 * 45.0**2)

    def test_validation(self):
        with pytest.raises(ValueError):
            UmbrellaDimension([0.0], angle="chi")
        with pytest.raises(ValueError):
            UmbrellaDimension([0.0], angle="phi", force_constant=-1.0)


class TestSaltDimension:
    def test_linear_factory(self):
        d = SaltDimension.linear(0.0, 1.0, 5)
        assert d.values == [0.0, 0.25, 0.5, 0.75, 1.0]
        assert d.code == "S"
        assert d.requires_single_point is True

    def test_apply_sets_salt(self):
        d = SaltDimension.linear(0.0, 1.0, 3)
        s = d.apply(ThermodynamicState(), 2)
        assert s.salt_molar == pytest.approx(1.0)

    def test_requires_matrix(self):
        d = SaltDimension.linear(0.0, 1.0, 2)
        ri = make_rep(0, salt=0)
        rj = make_rep(1, salt=1)
        states = {0: ThermodynamicState(), 1: ThermodynamicState()}
        with pytest.raises(ValueError, match="single-point"):
            d.exchange_delta(ri, rj, window_i=0, window_j=1, states=states)

    def test_exchange_delta_from_matrix(self):
        d = SaltDimension.linear(0.0, 1.0, 2)
        ri = make_rep(0, salt=0)
        rj = make_rep(1, salt=1)
        states = {0: ThermodynamicState(300.0), 1: ThermodynamicState(300.0)}
        matrix = {
            0: {0: -10.0, 1: -9.0},  # x_i's energy at windows 0, 1
            1: {0: -8.0, 1: -12.0},  # x_j's energy at windows 0, 1
        }
        delta = d.exchange_delta(
            ri, rj, window_i=0, window_j=1, states=states,
            energy_matrix=matrix,
        )
        beta = beta_from_temperature(300.0)
        # beta_i (E_0(x_j) - E_0(x_i)) + beta_j (E_1(x_i) - E_1(x_j))
        expected = beta * ((-8.0) - (-10.0)) + beta * ((-9.0) - (-12.0))
        assert delta == pytest.approx(expected)

    def test_rejects_negative_concentration(self):
        with pytest.raises(ValueError):
            SaltDimension([0.5, -0.1])


class TestPHDimension:
    def test_linear_factory(self):
        d = PHDimension.linear(4.0, 9.0, 6)
        assert d.n_windows == 6
        assert d.code == "H"

    def test_apply_is_identity(self):
        d = PHDimension.linear(4.0, 9.0, 3)
        s = ThermodynamicState()
        assert d.apply(s, 1) is s

    def test_apply_validates_index(self):
        d = PHDimension.linear(4.0, 9.0, 3)
        with pytest.raises(IndexError):
            d.apply(ThermodynamicState(), 7)

    def test_protonation_follows_henderson_hasselbalch(self):
        d = PHDimension.linear(2.0, 11.0, 2, pka=6.5)
        rng = np.random.default_rng(0)
        # far below pKa: almost always protonated
        low = np.mean([d.protonation_occupancy(2.0, rng) for _ in range(500)])
        high = np.mean([d.protonation_occupancy(11.0, rng) for _ in range(500)])
        assert low > 0.95
        assert high < 0.05

    def test_exchange_delta_sign(self):
        d = PHDimension([5.0, 8.0], pka=6.5)
        ri = make_rep(0, energies={"protonation": 1.0}, ph=0)
        rj = make_rep(1, energies={"protonation": 0.0}, ph=1)
        states = {0: ThermodynamicState(), 1: ThermodynamicState()}
        delta = d.exchange_delta(
            ri, rj, window_i=0, window_j=1, states=states
        )
        # moving protonated site to higher pH costs ln10 * (8-5)
        assert delta == pytest.approx(math.log(10.0) * 3.0)

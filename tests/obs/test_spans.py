"""Tests for span tracing on the virtual clock."""

from pathlib import Path

from repro.core import RepEx
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecord
from repro.pilot import EventQueue
from tests.conftest import small_tremd_config

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"


def make_registry(clock):
    registry = MetricsRegistry()
    registry.bind_clock(clock)
    return registry


class TestSpan:
    def test_span_measures_virtual_time(self, clock):
        registry = make_registry(clock)
        clock.schedule(5.0, lambda: None)
        span = registry.begin_span("md", cycle=1)
        clock.run()
        record = span.end()
        assert record.t_start == 0.0
        assert record.t_end == 5.0
        assert record.duration == 5.0
        assert record.tags == {"cycle": 1}
        assert registry.spans == [record]

    def test_context_manager_records_on_exit(self, clock):
        registry = make_registry(clock)
        with registry.span("exchange", sweep=3):
            clock.schedule(2.0, lambda: None)
            clock.run()
        (record,) = registry.spans
        assert record.name == "exchange"
        assert record.duration == 2.0
        assert record.tags["sweep"] == 3

    def test_end_is_idempotent(self, clock):
        registry = make_registry(clock)
        span = registry.begin_span("cycle")
        first = span.end()
        assert first is not None
        assert span.end() is None
        assert len(registry.spans) == 1

    def test_spans_cleared_by_reset(self, clock):
        registry = make_registry(clock)
        registry.begin_span("a").end()
        registry.reset()
        assert registry.spans == []


class TestSpanRecord:
    def test_round_trip(self):
        record = SpanRecord("md", 1.0, 3.5, {"cycle": 2, "pattern": "sync"})
        rebuilt = SpanRecord.from_dict(record.to_dict())
        assert rebuilt == record

    def test_duration_never_negative(self):
        assert SpanRecord("x", 5.0, 3.0, {}).duration == 0.0

    def test_from_dict_defaults_tags(self):
        record = SpanRecord.from_dict(
            {"name": "md", "t_start": 0, "t_end": 1}
        )
        assert record.tags == {}
        assert record.duration == 1.0


class TestSpanLineage:
    """The v2 span fields: span_id / parent_id / unit."""

    def test_registry_assigns_deterministic_span_ids(self, clock):
        registry = make_registry(clock)
        a = registry.begin_span("cycle")
        b = registry.begin_span("md", parent=a)
        assert a.span_id == "sp00000"
        assert b.span_id == "sp00001"
        assert b.parent_id == a.span_id
        registry.reset()
        assert registry.begin_span("cycle").span_id == "sp00000"

    def test_parent_accepts_span_or_id(self, clock):
        registry = make_registry(clock)
        parent = registry.begin_span("cycle")
        by_span = registry.begin_span("md", parent=parent).end()
        by_id = registry.begin_span("md", parent=parent.span_id).end()
        assert by_span.parent_id == by_id.parent_id == parent.span_id

    def test_unit_field_settable_after_creation(self, clock):
        registry = make_registry(clock)
        span = registry.begin_span("exchange")
        span.unit = "ex_temperature_c0000"
        assert span.end().unit == "ex_temperature_c0000"

    def test_lineage_round_trips(self):
        record = SpanRecord(
            "md", 0.0, 1.0, {"cycle": 0},
            span_id="sp00003", parent_id="sp00001", unit="md_r00000_c0000",
        )
        data = record.to_dict()
        assert data["span_id"] == "sp00003"
        assert SpanRecord.from_dict(data) == record

    def test_to_dict_omits_absent_lineage(self):
        """v1 consumers must not see new keys on lineage-free spans."""
        data = SpanRecord("md", 0.0, 1.0, {}).to_dict()
        assert set(data) == {"name", "t_start", "t_end", "tags"}

    def test_round_trip_over_golden_run(self):
        """Every span of a real run survives to_dict/from_dict exactly,
        and the EMM wires md/exchange spans to their cycle span."""
        result = RepEx(small_tremd_config()).run()
        manifest = result.manifest
        for record in manifest.spans:
            assert SpanRecord.from_dict(record.to_dict()) == record
        cycle_ids = {
            s.tags["cycle"]: s.span_id for s in manifest.spans_named("cycle")
        }
        for name in ("md", "exchange"):
            for span in manifest.spans_named(name):
                assert span.parent_id == cycle_ids[span.tags["cycle"]]
        for span in manifest.spans_named("exchange"):
            assert span.unit and span.unit.startswith("ex_")


class TestPR1ManifestCompat:
    """tests/fixtures/manifest_pr1.jsonl is frozen schema-v1 output
    (no unit records, no span lineage) and must keep loading."""

    def load(self):
        return RunManifest.load(FIXTURES / "manifest_pr1.jsonl")

    def test_v1_fixture_loads(self):
        manifest = self.load()
        assert manifest.schema_version == 1
        assert manifest.title == "pr1-era"
        assert manifest.units == []
        assert not manifest.partial
        assert len(manifest.spans) == 3
        assert all(s.span_id is None for s in manifest.spans)
        assert len(manifest.timeline) == 18

    def test_v1_fixture_round_trips(self):
        manifest = self.load()
        assert RunManifest.from_jsonl(manifest.to_jsonl()) == manifest

    def test_analytics_run_on_v1(self):
        """The trace analytics fall back to name heuristics when the
        manifest predates unit metadata."""
        from repro.obs.critical_path import critical_paths, decomposition
        from repro.obs.export import chrome_trace, validate_chrome_trace

        manifest = self.load()
        assert validate_chrome_trace(chrome_trace(manifest)) > 0
        (path,) = critical_paths(manifest)
        assert path.duration == 100.0
        totals = decomposition(manifest)
        assert totals["md"] == 180.0  # 2 units x 90 s x 1 core
        assert totals["exchange"] == 1.0

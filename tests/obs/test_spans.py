"""Tests for span tracing on the virtual clock."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecord
from repro.pilot import EventQueue


def make_registry(clock):
    registry = MetricsRegistry()
    registry.bind_clock(clock)
    return registry


class TestSpan:
    def test_span_measures_virtual_time(self, clock):
        registry = make_registry(clock)
        clock.schedule(5.0, lambda: None)
        span = registry.begin_span("md", cycle=1)
        clock.run()
        record = span.end()
        assert record.t_start == 0.0
        assert record.t_end == 5.0
        assert record.duration == 5.0
        assert record.tags == {"cycle": 1}
        assert registry.spans == [record]

    def test_context_manager_records_on_exit(self, clock):
        registry = make_registry(clock)
        with registry.span("exchange", sweep=3):
            clock.schedule(2.0, lambda: None)
            clock.run()
        (record,) = registry.spans
        assert record.name == "exchange"
        assert record.duration == 2.0
        assert record.tags["sweep"] == 3

    def test_end_is_idempotent(self, clock):
        registry = make_registry(clock)
        span = registry.begin_span("cycle")
        first = span.end()
        assert first is not None
        assert span.end() is None
        assert len(registry.spans) == 1

    def test_spans_cleared_by_reset(self, clock):
        registry = make_registry(clock)
        registry.begin_span("a").end()
        registry.reset()
        assert registry.spans == []


class TestSpanRecord:
    def test_round_trip(self):
        record = SpanRecord("md", 1.0, 3.5, {"cycle": 2, "pattern": "sync"})
        rebuilt = SpanRecord.from_dict(record.to_dict())
        assert rebuilt == record

    def test_duration_never_negative(self):
        assert SpanRecord("x", 5.0, 3.0, {}).duration == 0.0

    def test_from_dict_defaults_tags(self):
        record = SpanRecord.from_dict(
            {"name": "md", "t_start": 0, "t_end": 1}
        )
        assert record.tags == {}
        assert record.duration == 1.0

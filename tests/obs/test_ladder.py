"""Ladder round-trip / occupancy tracking (exchange dynamics, schema v3)."""

import pytest

from repro.core import RepEx
from repro.obs.ladder import LadderTracker
from repro.obs.metrics import MetricsRegistry
from tests.conftest import small_tremd_config


class TestWalkLabeling:
    def test_one_full_round_trip(self):
        """bottom -> top -> bottom closes exactly one trip."""
        tracker = LadderTracker({"temperature": 3})
        walk = [(0.0, 0), (10.0, 1), (20.0, 2), (30.0, 1), (40.0, 0)]
        for t, w in walk:
            tracker.observe(t, rid=1, windows={"temperature": w})
        assert tracker.round_trips("temperature") == [40.0]

    def test_revisiting_bottom_does_not_restart_the_trip(self):
        """An up-walker bouncing on window 0 keeps its original start."""
        tracker = LadderTracker({"temperature": 3})
        walk = [(0.0, 0), (10.0, 1), (20.0, 0), (30.0, 2), (40.0, 0)]
        for t, w in walk:
            tracker.observe(t, rid=1, windows={"temperature": w})
        # trip measured from the FIRST bottom touch, not the bounce at 20
        assert tracker.round_trips("temperature") == [40.0]

    def test_top_to_bottom_without_prior_bottom_is_not_a_trip(self):
        """A replica starting at the top is a down-walker; reaching the
        bottom labels it up but closes no trip (no recorded start)."""
        tracker = LadderTracker({"temperature": 3})
        tracker.observe(0.0, rid=1, windows={"temperature": 2})
        tracker.observe(10.0, rid=1, windows={"temperature": 0})
        assert tracker.round_trips("temperature") == []
        # ... but the next full excursion counts
        tracker.observe(20.0, rid=1, windows={"temperature": 2})
        tracker.observe(35.0, rid=1, windows={"temperature": 0})
        assert tracker.round_trips("temperature") == [25.0]

    def test_middle_start_stays_unlabeled_until_an_end(self):
        tracker = LadderTracker({"temperature": 5})
        tracker.observe(0.0, rid=1, windows={"temperature": 2})
        tracker.observe(5.0, rid=1, windows={"temperature": 3})
        records = tracker.records()[0]
        assert records["walkers"] == {"up": 0, "down": 0, "unlabeled": 1}

    def test_one_window_ladder_never_labels(self):
        tracker = LadderTracker({"temperature": 1})
        tracker.observe(0.0, rid=1, windows={"temperature": 0})
        tracker.observe(9.0, rid=1, windows={"temperature": 0})
        assert tracker.round_trips("temperature") == []


class TestOccupancy:
    def test_piecewise_constant_integral_is_exact(self):
        tracker = LadderTracker({"temperature": 3})
        tracker.observe(0.0, rid=1, windows={"temperature": 0})
        tracker.observe(10.0, rid=1, windows={"temperature": 2})
        tracker.finalize(25.0)
        occ = tracker.records()[0]["occupancy"]
        assert occ == {"0": 10.0, "2": 15.0}

    def test_finalize_sets_registry_gauges(self):
        registry = MetricsRegistry()
        tracker = LadderTracker({"temperature": 2}, registry=registry)
        tracker.observe(0.0, rid=1, windows={"temperature": 0})
        tracker.finalize(8.0)
        gauges = registry.snapshot()["gauges"]
        assert (
            gauges["exchange.ladder_occupancy_s{dim=temperature,window=0}"]
            == 8.0
        )

    def test_trip_counter_and_histogram_fire_live(self):
        registry = MetricsRegistry()
        tracker = LadderTracker({"temperature": 2}, registry=registry)
        for t, w in [(0.0, 0), (5.0, 1), (12.0, 0)]:
            tracker.observe(t, rid=1, windows={"temperature": w})
        snap = registry.snapshot()
        assert snap["counters"]["exchange.round_trips{dim=temperature}"] == 1
        hist = snap["histograms"]["exchange.round_trip_seconds{dim=temperature}"]
        assert hist["count"] == 1


class TestStateRoundTrip:
    def test_state_dict_load_state_is_lossless(self):
        tracker = LadderTracker({"temperature": 3})
        for t, w in [(0.0, 0), (10.0, 2), (20.0, 0), (30.0, 1)]:
            tracker.observe(t, rid=7, windows={"temperature": w})
        state = tracker.state_dict()
        fresh = LadderTracker({"temperature": 3})
        fresh.load_state(state)
        # continuing both trackers identically yields identical records
        for tr in (tracker, fresh):
            tr.observe(40.0, rid=7, windows={"temperature": 2})
            tr.observe(55.0, rid=7, windows={"temperature": 0})
            tr.finalize(60.0)
        assert fresh.records() == tracker.records()
        assert fresh.round_trips("temperature") == [20.0, 35.0]


class TestLadderInRun:
    @pytest.fixture(scope="class")
    def manifest(self):
        return RepEx(small_tremd_config(n_cycles=4)).run().manifest

    def test_manifest_carries_one_record_per_dimension(self, manifest):
        assert [r["dimension"] for r in manifest.ladder] == ["temperature"]
        rec = manifest.ladder[0]
        assert rec["n_windows"] == 4
        assert rec["round_trips"] == len(rec["rtt_s"])
        # occupancy spans [first observation, finalize]; the integral is
        # positive and covers only real windows of the ladder
        assert sum(rec["occupancy"].values()) > 0
        assert set(rec["occupancy"]) <= {"0", "1", "2", "3"}

    def test_summary_lines_mention_exchange_dynamics(self, manifest):
        text = "\n".join(manifest.summary_lines())
        assert "exchange dynamics (per dimension):" in text
        assert "temperature" in text and "round trips" in text

    def test_deterministic_across_runs(self, manifest):
        again = RepEx(small_tremd_config(n_cycles=4)).run().manifest
        assert again.ladder == manifest.ladder

"""Tests for the metrics registry: instruments, reset, default swapping."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    null_registry,
    set_registry,
    using_registry,
)
from repro.pilot import EventQueue


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        c = Counter("x")
        with pytest.raises(MetricError, match="cannot decrease"):
            c.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        g = Gauge("x")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_histogram_summary_stats(self):
        h = Histogram("x")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        d = h.to_dict()
        assert d["min"] == 1.0 and d["max"] == 4.0
        assert d["p50"] == 2.5

    def test_histogram_quantile_interpolates(self):
        h = Histogram("x")
        for v in (0.0, 10.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 5.0
        assert h.quantile(1.0) == 10.0
        assert h.quantile(0.25) == 2.5

    def test_histogram_empty_quantile_is_zero(self):
        assert Histogram("x").quantile(0.9) == 0.0

    def test_histogram_quantile_range_checked(self):
        h = Histogram("x")
        with pytest.raises(MetricError, match="quantile"):
            h.quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_cross_type_name_clash_raises(self, registry):
        registry.counter("emm.cycles")
        with pytest.raises(MetricError, match="already registered"):
            registry.gauge("emm.cycles")
        with pytest.raises(MetricError, match="already registered"):
            registry.histogram("emm.cycles")

    def test_reset_zeroes_in_place(self, registry):
        c = registry.counter("a")
        g = registry.gauge("b")
        h = registry.histogram("c")
        c.inc(3)
        g.set(7)
        h.observe(1.0)
        registry.spans.append(object())
        registry.reset()
        # cached references stay live and zeroed — the contract that lets
        # the scheduler keep instruments across RepEx.run() resets
        assert c is registry.counter("a") and c.value == 0.0
        assert g is registry.gauge("b") and g.value == 0.0
        assert h is registry.histogram("c") and h.count == 0
        assert registry.spans == []

    def test_snapshot_is_json_serializable(self, registry):
        registry.counter("z.count").inc(2)
        registry.gauge("a.depth").set(4)
        registry.histogram("m.wait").observe(1.5)
        snap = registry.snapshot()
        text = json.dumps(snap)
        assert json.loads(text) == snap
        assert snap["counters"] == {"z.count": 2.0}
        assert snap["gauges"] == {"a.depth": 4.0}
        assert snap["histograms"]["m.wait"]["count"] == 1

    def test_bind_clock_accepts_callable_and_object(self, registry):
        registry.bind_clock(lambda: 42.0)
        assert registry.now() == 42.0
        clock = EventQueue()
        registry.bind_clock(clock)
        assert registry.now() == clock.now
        assert registry.clock_bound


class TestNullRegistry:
    def test_disabled_and_shared_noop(self):
        null = NullRegistry()
        assert null.enabled is False
        c = null.counter("anything")
        assert c is null.gauge("other") is null.histogram("third")
        c.inc(5)
        c.observe(1.0)
        c.set(3)
        assert c.value == 0.0 and c.count == 0

    def test_null_span_never_reads_clock(self):
        null = NullRegistry()

        def explode():
            raise AssertionError("clock read on the null path")

        null.bind_clock(explode)
        span = null.begin_span("cycle", cycle=0)
        assert span.end() is None
        assert null.spans == []


class TestDefaultRegistry:
    def test_set_registry_returns_previous(self):
        previous = get_registry()
        mine = MetricsRegistry()
        try:
            assert set_registry(mine) is previous
            assert get_registry() is mine
        finally:
            set_registry(previous)

    def test_using_registry_restores_on_exit(self):
        before = get_registry()
        with using_registry(MetricsRegistry()) as inner:
            assert get_registry() is inner
        assert get_registry() is before

    def test_null_registry_installs_off_switch(self):
        before = get_registry()
        try:
            null = null_registry()
            assert get_registry() is null
            assert not get_registry().enabled
        finally:
            set_registry(before)

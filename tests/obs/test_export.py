"""Tests for trace export: Chrome Trace Event JSON and OpenMetrics text."""

import json
from collections import defaultdict

import pytest

from repro.core import RepEx
from repro.obs.export import (
    PID_CORES,
    escape_label_value,
    format_label,
    split_label_pairs,
    unescape_label_value,
    PID_PHASES,
    PID_REPLICAS,
    REQUIRED_EVENT_KEYS,
    chrome_trace,
    openmetrics,
    unit_intervals,
    unit_phase,
    unit_replica,
    validate_chrome_trace,
)
from tests.conftest import small_tremd_config


@pytest.fixture(scope="module")
def manifest():
    return RepEx(small_tremd_config()).run().manifest


@pytest.fixture(scope="module")
def trace(manifest):
    return chrome_trace(manifest)


class TestChromeTrace:
    def test_schema_valid(self, trace):
        assert validate_chrome_trace(trace) == len(trace["traceEvents"])
        for event in trace["traceEvents"]:
            for key in REQUIRED_EVENT_KEYS:
                assert key in event

    def test_deterministic(self, trace):
        """Acceptance criterion: same seed -> byte-identical trace JSON."""
        again = chrome_trace(RepEx(small_tremd_config()).run().manifest)
        assert json.dumps(trace, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_metadata_events_lead(self, trace):
        events = trace["traceEvents"]
        phases = [e["ph"] for e in events]
        assert "M" in phases and "X" in phases
        assert phases == sorted(phases, key=lambda p: p != "M")

    def test_phase_lane_carries_algorithm_spans(self, trace, manifest):
        names = {
            e["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == PID_PHASES
        }
        assert {"cycle", "md", "exchange"} <= names
        span_ids = [
            e["args"]["span_id"]
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == PID_PHASES
        ]
        assert len(span_ids) == len(set(span_ids)) == len(manifest.spans)

    def test_one_lane_per_replica(self, trace, manifest):
        lanes = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
            and e["pid"] == PID_REPLICAS
            and e["name"] == "thread_name"
        }
        assert lanes == {f"replica {r}" for r in range(manifest.n_replicas)}

    def test_core_lane_is_consistent(self, trace, manifest):
        """Core slices never exceed the pilot's cores or overlap in-lane."""
        by_core = defaultdict(list)
        for e in trace["traceEvents"]:
            if e["ph"] == "X" and e["pid"] == PID_CORES:
                by_core[e["tid"]].append((e["ts"], e["ts"] + e["dur"]))
        assert by_core
        assert len(by_core) <= manifest.pilot_cores
        for slices in by_core.values():
            slices.sort()
            for (_, end), (start, _) in zip(slices, slices[1:]):
                assert start >= end

    def test_other_data_identifies_run(self, trace, manifest):
        other = trace["otherData"]
        assert other["title"] == manifest.title
        assert other["config_hash"] == manifest.config_hash
        assert other["schema_version"] == manifest.schema_version


class TestValidate:
    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_rejects_event_missing_keys(self):
        doc = {"traceEvents": [{"ph": "X", "ts": 0, "pid": 1}]}
        with pytest.raises(ValueError, match="missing keys"):
            validate_chrome_trace(doc)

    def test_rejects_negative_duration(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "ts": 0, "dur": -5, "pid": 1, "tid": 1, "name": "x"}
            ]
        }
        with pytest.raises(ValueError, match="negative dur"):
            validate_chrome_trace(doc)


class TestUnitHelpers:
    def test_intervals_rebuild_lifecycle(self, manifest):
        intervals = unit_intervals(manifest)
        assert len(intervals) == manifest.n_units
        for chain in intervals.values():
            states = [state for state, _, _ in chain]
            assert "EXECUTING" in states
            for (_, _, end), (_, start, _) in zip(chain, chain[1:]):
                assert start == end  # contiguous, causal

    def test_replica_and_phase_fall_back_to_names(self):
        assert unit_replica("md_r00003_c0001", None) == 3
        assert unit_replica("ex_temperature_c0001", None) is None
        assert unit_replica("md_r00003_c0001", {"rid": 7}) == 7
        assert unit_phase("md_r00003_c0001", None) == "md"
        assert unit_phase("ex_temperature_c0001", None) == "exchange"
        assert unit_phase("mystery", None) is None
        assert unit_phase("mystery", {"phase": "md"}) == "md"


class TestOpenMetrics:
    def test_exposition_shape(self, manifest):
        text = openmetrics(manifest)
        assert text.endswith("# EOF\n")
        assert "# TYPE emm_cycles counter" in text
        assert "emm_cycles_total 2.0" in text
        assert "# TYPE emm_cycle_seconds summary" in text
        assert 'emm_cycle_seconds{quantile="0.5"}' in text
        assert "emm_cycle_seconds_count" in text

    def test_labelled_counters_become_label_sets(self, manifest):
        text = openmetrics(manifest)
        assert 'exchange_attempted_total{dim="temperature"}' in text
        assert "{dim=temperature}" not in text  # registry syntax never leaks

    def test_empty_manifest_is_just_eof(self, manifest):
        import dataclasses

        empty = dataclasses.replace(manifest, metrics={})
        assert openmetrics(empty) == "# EOF\n"


class TestLabelEscaping:
    """OpenMetrics label escaping round-trips `"`, `\\` and newlines."""

    NASTY = [
        'acme "west"',
        "back\\slash",
        "multi\nline",
        'all\\three "of\nthem"',
        "comma, equals=, braces{}",
    ]

    def test_escape_unescape_round_trip(self):
        for raw in self.NASTY:
            escaped = escape_label_value(raw)
            assert "\n" not in escaped  # expositions are line-oriented
            assert unescape_label_value(escaped) == raw

    def test_format_label_keeps_simple_values_bare(self):
        assert format_label("dim", "temperature") == "dim=temperature"
        assert format_label("window", 3) == "window=3"

    def test_format_label_quotes_and_split_recovers(self):
        # split_label_pairs returns raw (already-unescaped) values
        for raw in self.NASTY:
            assert split_label_pairs(format_label("tenant", raw)) == [
                ("tenant", raw)
            ]

    def test_split_handles_mixed_quoted_and_bare_pairs(self):
        labels = 'dim=temperature,tenant="acme \\"west\\"",window=2'
        assert split_label_pairs(labels) == [
            ("dim", "temperature"),
            ("tenant", 'acme "west"'),
            ("window", "2"),
        ]

    def test_nasty_labels_render_to_valid_exposition(self):
        """A registry carrying hostile tenant names still exports clean
        OpenMetrics text that the validator accepts."""
        from repro.obs.export import openmetrics_snapshot, validate_openmetrics
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        for raw in self.NASTY:
            name = "campaign.sessions{" + format_label("tenant", raw) + "}"
            registry.counter(name).inc()
        text = openmetrics_snapshot(registry.snapshot())
        assert validate_openmetrics(text) == len(self.NASTY)
        # every raw value survives the exposition round trip
        recovered = set()
        for line in text.splitlines():
            if line.startswith("campaign_sessions_total{"):
                body = line[line.index("{") + 1 : line.rindex("}")]
                for key, value in split_label_pairs(body):
                    if key == "tenant":
                        recovered.add(value)
        assert recovered == set(self.NASTY)

"""In-process MetricsServer: endpoints, fallbacks, event streaming."""

import json
import urllib.request

import pytest

from repro.obs.export import openmetrics_snapshot, validate_openmetrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import MetricsServer, TelemetrySource
from repro.obs.stream import EventBus


def _get(server, path):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=10.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("emm.cycles").inc(3)
    reg.gauge("scheduler.queue_depth").set(2)
    reg.histogram("md.duration_s").observe(12.5)
    return reg


class TestEndpoints:
    def test_metrics_matches_file_exposition(self, registry):
        source = TelemetrySource(snapshot=registry.snapshot)
        with MetricsServer(source) as server:
            status, ctype, body = _get(server, "/metrics")
        assert status == 200
        assert ctype.startswith("application/openmetrics-text")
        assert body.decode() == openmetrics_snapshot(registry.snapshot())
        assert validate_openmetrics(body.decode()) > 0

    def test_healthz_reports_bus_stats(self, registry):
        bus = EventBus()
        bus.subscribe(maxlen=10, name="probe")
        bus.publish({"kind": "event"})
        source = TelemetrySource(
            health=lambda: {"virtual_t": 42.0}, bus=bus
        )
        with MetricsServer(source) as server:
            _, ctype, body = _get(server, "/healthz")
        payload = json.loads(body)
        assert ctype == "application/json"
        assert payload["status"] == "ok"
        assert payload["virtual_t"] == 42.0
        assert payload["uptime_host_s"] >= 0
        assert payload["bus"]["published"] == 1

    def test_runs_endpoint(self):
        runs = [{"title": "demo", "pattern": "synchronous"}]
        source = TelemetrySource(runs=lambda: runs)
        with MetricsServer(source) as server:
            _, _, body = _get(server, "/runs")
        assert json.loads(body) == runs

    def test_unknown_route_is_404(self):
        with MetricsServer(TelemetrySource()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server, "/nope")
        assert err.value.code == 404

    def test_empty_source_serves_defaults(self):
        """All callables None: endpoints degrade, never 500."""
        with MetricsServer(TelemetrySource()) as server:
            _, _, metrics = _get(server, "/metrics")
            _, _, runs = _get(server, "/runs")
            _, _, health = _get(server, "/healthz")
        assert metrics.decode().endswith("# EOF\n")
        assert json.loads(runs) == []
        assert json.loads(health)["status"] == "ok"

    def test_flaky_snapshot_falls_back_to_last_exposition(self, registry):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("dict changed size during iteration")
            return registry.snapshot()

        source = TelemetrySource(snapshot=flaky)
        with MetricsServer(source) as server:
            _, _, first = _get(server, "/metrics")
            _, _, second = _get(server, "/metrics")  # snapshot now raises
        assert second == first  # stale cache, not a 500


class TestEvents:
    def test_events_streams_published_records(self):
        bus = EventBus()
        source = TelemetrySource(bus=bus)
        with MetricsServer(source) as server:
            records = [{"kind": "event", "i": i} for i in range(3)]
            # publish happens after the subscriber attaches inside the
            # handler, so publish from a timer once the request lands
            import threading

            def feed():
                while bus.stats()["sinks"] == []:
                    pass
                for r in records:
                    bus.publish(r)

            feeder = threading.Thread(target=feed, daemon=True)
            feeder.start()
            url = f"{server.url}/events?limit=3&timeout_s=10"
            with urllib.request.urlopen(url, timeout=20.0) as resp:
                assert resp.headers["Content-Type"] == "application/x-ndjson"
                got = [json.loads(line) for line in resp if line.strip()]
            feeder.join(timeout=5.0)
        assert got == records

    def test_events_without_bus_is_404(self):
        with MetricsServer(TelemetrySource()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server, "/events")
        assert err.value.code == 404


class TestLifecycle:
    def test_port_zero_binds_ephemeral(self):
        server = MetricsServer(TelemetrySource())
        port = server.start()
        try:
            assert port > 0
            assert server.url == f"http://127.0.0.1:{port}"
        finally:
            server.stop()

    def test_stop_is_idempotent_and_releases_the_port(self):
        server = MetricsServer(TelemetrySource())
        port = server.start()
        server.stop()
        server.stop()  # second stop is a no-op
        # the port can be rebound immediately
        again = MetricsServer(TelemetrySource(), port=port)
        assert again.start() == port
        again.stop()

"""``repro obs tail`` aggregation: TailTable folds and record iterators."""

import json

from repro.obs.tail import TailTable, iter_file_records


def _unit(t, unit, state):
    return {"kind": "event", "t": t, "unit": unit, "state": state}


class TestUnitFold:
    def test_phase_lifecycle_counts(self):
        table = TailTable()
        table.ingest(_unit(0.0, "md_r0_c0", "RUNNING"))
        table.ingest(_unit(1.0, "md_r1_c0", "RUNNING"))
        table.ingest(_unit(5.0, "md_r0_c0", "DONE"))
        table.ingest(_unit(6.0, "md_r1_c0", "FAILED"))
        table.ingest(_unit(7.0, "ex_c0", "RUNNING"))
        assert table.phases["md"] == {"active": 0, "done": 1, "failed": 1}
        assert table.phases["exchange"]["active"] == 1
        assert table.t == 7.0
        assert table.n_records == 5

    def test_unknown_unit_names_land_in_other(self):
        table = TailTable()
        table.ingest(_unit(0.0, "mystery-unit", "DONE"))
        assert "other" in table.phases

    def test_render_mentions_each_phase(self):
        table = TailTable()
        table.ingest(_unit(0.0, "md_r0_c0", "RUNNING"))
        table.ingest(_unit(3.5, "md_r0_c0", "DONE"))
        out = table.render()
        assert "t=3.5s (virtual)" in out
        assert "md" in out and "done" in out


class TestCampaignFold:
    def test_session_state_moves_between_columns(self):
        table = TailTable()
        table.ingest({"kind": "campaign", "t": 0.0, "event": "submit",
                      "uid": "s1", "tenant": "alice"})
        table.ingest({"kind": "campaign", "t": 1.0, "event": "start",
                      "uid": "s1"})
        # tenant remembered from the submit record
        assert table.tenants["alice"] == {"queued": 0, "running": 1}
        table.ingest({"kind": "campaign", "t": 9.0, "event": "done",
                      "uid": "s1"})
        assert table.tenants["alice"]["running"] == 0
        assert table.tenants["alice"]["done"] == 1
        assert "alice" in table.render()

    def test_unknown_audit_events_are_ignored(self):
        table = TailTable()
        table.ingest({"kind": "campaign", "t": 0.0, "event": "quota_check",
                      "uid": "s1", "tenant": "alice"})
        assert table.tenants == {}


class TestAlertAndFaultFold:
    def test_firing_alerts_shown_until_resolved(self):
        table = TailTable()
        table.ingest({"kind": "alert", "t": 5.0, "rule": "deep",
                      "state": "firing", "value": 50.0,
                      "severity": "critical"})
        assert "ALERT deep firing" in table.render()
        assert "severity=critical" in table.render()
        table.ingest({"kind": "alert", "t": 9.0, "rule": "deep",
                      "state": "resolved", "value": 0.0})
        assert "ALERT" not in table.render()
        assert table.n_alert_transitions == 2

    def test_faults_counted(self):
        table = TailTable()
        table.ingest({"kind": "fault", "t": 1.0, "fault": "crash"})
        table.ingest({"kind": "fault", "t": 2.0, "fault": "slow"})
        assert table.n_faults == 2
        assert "faults=2" in table.render()


class TestFileIterator:
    def test_reads_jsonl_and_skips_garbage(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        records = [_unit(0.0, "md_r0_c0", "RUNNING"),
                   _unit(4.0, "md_r0_c0", "DONE")]
        lines = [json.dumps(records[0]), "{not json", "",
                 json.dumps(records[1])]
        path.write_text("\n".join(lines) + "\n")
        assert list(iter_file_records(path)) == records

    def test_follow_gives_up_after_idle_window(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(json.dumps(_unit(0.0, "md_r0_c0", "DONE")) + "\n")
        got = list(
            iter_file_records(path, follow=True, poll_s=0.01, max_idle_s=0.05)
        )
        assert len(got) == 1  # returned instead of hanging

"""Event-bus backpressure: a slow sink must never stall the DES."""

import threading

import pytest

from repro.core import RepEx
from repro.obs.stream import EventBus
from tests.conftest import small_tremd_config


class TestSubscription:
    def test_fifo_delivery(self):
        bus = EventBus()
        sub = bus.subscribe()
        for i in range(5):
            bus.publish({"i": i})
        assert [r["i"] for r in sub.drain()] == [0, 1, 2, 3, 4]

    def test_full_queue_drops_newest_and_counts(self):
        bus = EventBus()
        sub = bus.subscribe(maxlen=3)
        accepted = [bus.publish({"i": i}) for i in range(5)]
        # first three accepted, the two overflow records dropped
        assert accepted == [1, 1, 1, 0, 0]
        assert sub.dropped == 2
        assert sub.delivered == 3
        # the consumer keeps a contiguous prefix — the gap is at the end
        assert [r["i"] for r in sub.drain()] == [0, 1, 2]

    def test_drop_is_per_subscriber(self):
        bus = EventBus()
        slow = bus.subscribe(maxlen=1, name="slow")
        fast = bus.subscribe(maxlen=100, name="fast")
        for i in range(10):
            bus.publish({"i": i})
        assert slow.dropped == 9 and fast.dropped == 0
        assert len(fast.drain()) == 10
        stats = bus.stats()
        assert stats["published"] == 10
        assert stats["dropped"] == 9
        by_name = {s["name"]: s for s in stats["sinks"]}
        assert by_name["slow"]["dropped"] == 9
        assert by_name["fast"]["delivered"] == 10

    def test_pop_blocks_until_publish(self):
        bus = EventBus()
        sub = bus.subscribe()
        got = []

        def consumer():
            got.append(sub.pop(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        bus.publish({"x": 1})
        thread.join(timeout=5.0)
        assert got == [{"x": 1}]

    def test_pop_returns_none_on_timeout(self):
        bus = EventBus()
        sub = bus.subscribe()
        assert sub.pop(timeout=0.01) is None

    def test_close_wakes_blocked_pop(self):
        bus = EventBus()
        sub = bus.subscribe()
        got = []

        def consumer():
            got.append(sub.pop(timeout=10.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        sub.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got == [None]

    def test_closed_subscription_rejects_offers(self):
        bus = EventBus()
        sub = bus.subscribe()
        sub.close()
        assert bus.publish({"x": 1}) == 0
        assert sub.pending == 0


class TestEventBus:
    def test_publish_never_raises_on_failing_callback(self):
        bus = EventBus()
        seen = []

        def bad(record):
            raise RuntimeError("sink bug")

        bus.attach(bad)
        bus.attach(seen.append)
        bus.publish({"i": 0})  # bad raises once, is removed
        bus.publish({"i": 1})
        assert [r["i"] for r in seen] == [0, 1]

    def test_close_mid_stream(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.publish({"i": 0})
        bus.close()
        assert bus.closed
        assert bus.publish({"i": 1}) == 0  # rejected, not raised
        assert sub.closed
        # records enqueued before close stay drainable
        assert [r["i"] for r in sub.drain()] == [0]

    def test_subscribe_after_close_is_born_closed(self):
        bus = EventBus()
        bus.close()
        sub = bus.subscribe()
        assert sub.closed
        assert sub.pop(timeout=0.01) is None


class TestBusOnRun:
    """The bus wired into a real run: opt-in, lossless when not slow."""

    def test_run_publishes_unit_events_and_run_markers(self):
        bus = EventBus()
        sub = bus.subscribe(maxlen=100_000)
        result = RepEx(small_tremd_config(), event_bus=bus).run()
        records = sub.drain()
        kinds = {r["kind"] for r in records}
        assert kinds == {"run", "event"}
        assert records[0] == {
            "kind": "run", "state": "started", "title": "test-tremd",
        }
        assert records[-1]["state"] == "finished"
        assert records[-1]["t"] == pytest.approx(result.t_end)
        # every manifest timeline event was published
        n_events = sum(1 for r in records if r["kind"] == "event")
        assert n_events == len(result.manifest.timeline)

    def test_tiny_queue_cannot_stall_or_break_the_run(self):
        """A saturated subscriber drops records; the run is unaffected."""
        bus = EventBus()
        sub = bus.subscribe(maxlen=2)
        result = RepEx(small_tremd_config(), event_bus=bus).run()
        baseline = RepEx(small_tremd_config()).run()
        assert result.manifest.timeline == baseline.manifest.timeline
        assert sub.dropped > 0
        assert sub.delivered == 2

    def test_bus_does_not_change_metrics(self):
        bus = EventBus()
        bus.subscribe(maxlen=1)
        with_bus = RepEx(small_tremd_config(), event_bus=bus).run()
        without = RepEx(small_tremd_config()).run()
        assert with_bus.manifest.metrics == without.manifest.metrics

"""End-to-end checks that the instrumented layers agree with the results.

Every test runs a small simulation under a private registry so counters
reflect exactly one run and nothing the rest of the suite did.
"""

import pytest

from repro.core import RepEx
from repro.core.config import PatternSpec
from repro.obs.metrics import MetricsRegistry, using_registry
from tests.conftest import small_tremd_config


def run_with_registry(config):
    registry = MetricsRegistry()
    with using_registry(registry):
        result = RepEx(config).run()
    return registry, result


class TestSchedulerInstrumentation:
    def test_unit_counters_balance(self):
        registry, result = run_with_registry(small_tremd_config())
        counters = registry.snapshot()["counters"]
        assert counters["scheduler.submitted"] == (
            counters["scheduler.completed"]
            + counters["scheduler.failed"]
            + counters["scheduler.canceled"]
        )
        assert counters["scheduler.failed"] == 0
        assert counters["scheduler.started"] == counters["scheduler.submitted"]

    def test_gauges_drain_to_zero_after_run(self):
        registry, _ = run_with_registry(small_tremd_config())
        gauges = registry.snapshot()["gauges"]
        assert gauges["scheduler.queue_depth"] == 0
        assert gauges["scheduler.used_cores"] == 0

    def test_wait_histogram_covers_every_start(self):
        registry, _ = run_with_registry(small_tremd_config())
        snap = registry.snapshot()
        wait = snap["histograms"]["scheduler.wait_seconds"]
        assert wait["count"] == snap["counters"]["scheduler.started"]
        assert wait["min"] >= 0.0


class TestExchangeInstrumentation:
    def test_counters_match_result_stats(self):
        registry, result = run_with_registry(small_tremd_config())
        counters = registry.snapshot()["counters"]
        attempted = sum(s.attempted for s in result.exchange_stats.values())
        accepted = sum(s.accepted for s in result.exchange_stats.values())
        assert counters["exchange.attempted"] == attempted
        assert counters.get("exchange.accepted", 0) == accepted


class TestEmmInstrumentation:
    def test_sync_cycle_counters_and_spans(self):
        registry, result = run_with_registry(small_tremd_config())
        counters = registry.snapshot()["counters"]
        assert counters["emm.cycles"] == len(result.cycle_timings)
        assert counters["emm.exchange_sweeps"] == len(result.cycle_timings)
        cycles = [s for s in registry.spans if s.name == "cycle"]
        assert len(cycles) == len(result.cycle_timings)
        # each cycle span contains its md span
        mds = [s for s in registry.spans if s.name == "md"]
        assert len(mds) == len(cycles)
        for md, cyc in zip(mds, cycles):
            assert cyc.t_start <= md.t_start <= md.t_end <= cyc.t_end

    def test_cycle_histogram_tracks_spans(self):
        registry, result = run_with_registry(small_tremd_config())
        hist = registry.snapshot()["histograms"]["emm.cycle_seconds"]
        assert hist["count"] == len(result.cycle_timings)
        spans = [c.span for c in result.cycle_timings]
        assert hist["max"] == pytest.approx(max(spans), rel=1e-6)

    def test_async_sweep_spans(self):
        config = small_tremd_config(
            pattern=PatternSpec(kind="asynchronous", window_seconds=60.0),
            n_cycles=3,
        )
        registry, result = run_with_registry(config)
        counters = registry.snapshot()["counters"]
        sweeps = [s for s in registry.spans if s.name == "exchange"]
        assert counters["emm.exchange_sweeps"] == len(sweeps) > 0
        assert all(s.tags["pattern"] == "asynchronous" for s in sweeps)
        assert counters["emm.cycles"] == len(result.cycle_timings)


class TestStagingInstrumentation:
    def test_transfer_counters_accumulate(self):
        registry, _ = run_with_registry(small_tremd_config())
        counters = registry.snapshot()["counters"]
        assert counters["staging.transfers"] > 0
        assert counters["staging.bytes_mb"] > 0.0

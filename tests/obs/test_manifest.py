"""Tests for run manifests: construction, JSONL round-trip, phase totals."""

import json

import pytest

from repro.core import RepEx
from repro.obs.manifest import (
    ManifestError,
    RunManifest,
    config_hash,
    phase_totals,
)
from repro.obs.metrics import NullRegistry, using_registry
from tests.conftest import small_tremd_config


@pytest.fixture(scope="module")
def run():
    """One small synchronous T-REMD run with its RepEx facade."""
    repex = RepEx(small_tremd_config())
    return repex, repex.run()


class TestFromRun:
    def test_identity_fields(self, run):
        repex, result = run
        manifest = result.manifest
        assert manifest is not None
        assert manifest.title == result.title
        assert manifest.pattern == "synchronous"
        assert manifest.n_replicas == 4
        assert manifest.pilot_cores == 4
        assert manifest.seed == 7
        assert manifest.config_hash == config_hash(repex.config)
        assert manifest.n_units == len(repex.tracer.records)
        assert manifest.wallclock == pytest.approx(result.wallclock)

    def test_phase_totals_match_emm_accounting(self, run):
        """Acceptance criterion: manifest totals agree with the EMM's
        core-second accounting to within 1%."""
        _, result = run
        manifest = result.manifest
        accounted = result.md_core_seconds + result.exchange_core_seconds
        assert manifest.busy_core_seconds() == pytest.approx(
            accounted, rel=0.01
        )
        assert manifest.phase_totals["md"] == pytest.approx(
            result.md_core_seconds, rel=0.01
        )
        assert manifest.phase_totals["exchange"] == pytest.approx(
            result.exchange_core_seconds, rel=0.01
        )

    def test_phase_totals_buckets(self, run):
        repex, _ = run
        totals = phase_totals(repex.tracer)
        assert set(totals) == {"md", "exchange", "staging", "overhead", "other"}
        assert totals["md"] > 0
        assert totals["staging"] > 0
        assert totals["overhead"] > 0
        assert totals["other"] == 0.0  # every unit is phase-tagged

    def test_metrics_and_spans_captured(self, run):
        _, result = run
        manifest = result.manifest
        counters = manifest.metrics["counters"]
        assert counters["emm.cycles"] == len(result.cycle_timings)
        assert counters["scheduler.submitted"] == manifest.n_units
        assert manifest.spans_named("cycle")
        assert manifest.spans_named("md")
        assert all(s.duration >= 0 for s in manifest.spans)

    def test_timeline_sorted_and_complete(self, run):
        _, result = run
        timeline = result.manifest.timeline
        assert timeline == sorted(timeline, key=lambda e: (e[0], e[1], e[2]))
        states = {state for _, _, state in timeline}
        assert "EXECUTING" in states and "DONE" in states


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, run, tmp_path):
        _, result = run
        manifest = result.manifest
        path = manifest.dump(tmp_path / "run.jsonl")
        loaded = RunManifest.load(path)
        assert loaded == manifest

    def test_jsonl_lines_are_self_describing(self, run):
        _, result = run
        kinds = [
            json.loads(line)["kind"]
            for line in result.manifest.to_jsonl().splitlines()
        ]
        assert kinds[0] == "run"
        assert kinds[1] == "metrics"
        assert set(kinds) == {
            "run", "metrics", "span", "event", "unit", "ladder"
        }

    def test_invalid_json_line_rejected(self):
        with pytest.raises(ManifestError, match="invalid JSON"):
            RunManifest.from_jsonl("{not json}\n")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ManifestError, match="unknown record kind"):
            RunManifest.from_jsonl('{"kind": "mystery"}\n')

    def test_missing_header_rejected(self):
        with pytest.raises(ManifestError, match="no 'run' header"):
            RunManifest.from_jsonl('{"kind": "metrics", "data": {}}\n')


class TestRecovery:
    """Tolerant loading of truncated / damaged streamed manifests."""

    def truncated(self, run):
        """The JSONL cut mid-way through its second-to-last record."""
        _, result = run
        lines = result.manifest.to_jsonl().splitlines(True)
        return "".join(lines[:-2]) + lines[-2][: len(lines[-2]) // 2]

    def test_strict_load_still_raises(self, run):
        with pytest.raises(ManifestError, match="invalid JSON"):
            RunManifest.from_jsonl(self.truncated(run))

    def test_recover_salvages_the_prefix(self, run):
        _, result = run
        manifest = RunManifest.from_jsonl(self.truncated(run), recover=True)
        assert manifest.partial
        assert len(manifest.recovered) == 1
        assert "truncated or invalid JSON" in manifest.recovered[0]
        assert manifest.title == result.manifest.title
        assert manifest.spans == result.manifest.spans
        # the cut record and everything after it are gone, nothing else
        assert len(manifest.timeline) == len(result.manifest.timeline) - 2

    def test_recover_skips_unknown_kinds(self, run):
        _, result = run
        text = result.manifest.to_jsonl() + '{"kind": "mystery"}\n'
        manifest = RunManifest.from_jsonl(text, recover=True)
        assert manifest.partial
        assert "unknown record kind 'mystery'" in manifest.recovered[0]

    def test_recover_never_saves_a_headerless_file(self):
        with pytest.raises(ManifestError, match="no 'run' header"):
            RunManifest.from_jsonl('{"kind": "metrics"}\n', recover=True)

    def test_summary_reports_recovery(self, run):
        manifest = RunManifest.from_jsonl(self.truncated(run), recover=True)
        text = "\n".join(manifest.summary_lines())
        assert "RECOVERED:" in text
        assert "PARTIAL" in text

    def test_recovered_warnings_never_serialized(self, run):
        manifest = RunManifest.from_jsonl(self.truncated(run), recover=True)
        reloaded = RunManifest.from_jsonl(manifest.to_jsonl())
        assert reloaded.recovered == []
        assert reloaded.partial  # partiality itself does persist


class TestConfigHash:
    def test_stable_across_equal_configs(self):
        assert config_hash(small_tremd_config()) == config_hash(
            small_tremd_config()
        )

    def test_sensitive_to_changes(self):
        assert config_hash(small_tremd_config()) != config_hash(
            small_tremd_config(seed=8)
        )


class TestNullRegistryRun:
    def test_manifest_is_identity_only(self):
        with using_registry(NullRegistry()):
            result = RepEx(small_tremd_config()).run()
        manifest = result.manifest
        assert manifest is not None
        assert manifest.metrics == {}
        assert manifest.spans == []
        assert manifest.timeline == []
        assert manifest.phase_totals == {}
        assert manifest.title == result.title


class TestSummary:
    def test_summary_lines_render_phases_and_counters(self, run):
        _, result = run
        text = "\n".join(result.manifest.summary_lines())
        assert "phase totals" in text
        assert "md" in text and "exchange" in text
        assert "emm.cycles" in text
        assert "utilization" in text

"""Tests for the critical-path analytics."""

import dataclasses

import pytest

from repro.core import RepEx
from repro.obs.critical_path import (
    KINDS,
    classify,
    critical_paths,
    cycle_windows,
    decomposition,
    render_report,
)
from tests.conftest import small_tremd_config


def async_config():
    cfg = small_tremd_config()
    return dataclasses.replace(
        cfg, pattern=dataclasses.replace(cfg.pattern, kind="asynchronous")
    )


@pytest.fixture(scope="module")
def sync_manifest():
    return RepEx(small_tremd_config()).run().manifest


@pytest.fixture(scope="module")
def async_manifest():
    return RepEx(async_config()).run().manifest


def assert_decomposition_matches(manifest):
    """Acceptance criterion: the timeline-derived decomposition equals
    the manifest's own phase_totals to within timeline rounding (the
    timeline stores timestamps rounded to 1 microsecond)."""
    decomp = decomposition(manifest)
    tolerance = max(1e-3, 1e-6 * len(manifest.timeline))
    assert set(decomp) == set(manifest.phase_totals)
    for phase, expected in manifest.phase_totals.items():
        assert decomp[phase] == pytest.approx(expected, abs=tolerance)


class TestDecomposition:
    def test_matches_phase_totals_sync(self, sync_manifest):
        assert_decomposition_matches(sync_manifest)

    def test_matches_phase_totals_async(self, async_manifest):
        assert_decomposition_matches(async_manifest)


class TestWindows:
    def test_sync_windows_are_cycles(self, sync_manifest):
        windows = cycle_windows(sync_manifest)
        assert len(windows) == 2
        assert [name for name, *_ in windows] == ["cycle 0", "cycle 1"]
        for _, _, t0, t1, dimension in windows:
            assert t1 > t0
            assert dimension == "temperature"

    def test_async_windows_are_sweeps(self, async_manifest):
        windows = cycle_windows(async_manifest)
        assert windows
        assert all(name.startswith("sweep") for name, *_ in windows)

    def test_no_spans_falls_back_to_run_extent(self, sync_manifest):
        bare = dataclasses.replace(sync_manifest, spans=[])
        ((name, _, t0, t1, _),) = cycle_windows(bare)
        assert name == "run"
        assert (t0, t1) == (
            sync_manifest.timeline[0][0],
            sync_manifest.timeline[-1][0],
        )


class TestCriticalPaths:
    def test_segments_tile_each_window(self, sync_manifest):
        for path in critical_paths(sync_manifest):
            assert path.segments
            total = sum(s.duration for s in path.segments)
            assert total == pytest.approx(path.duration, abs=1e-3)
            for prev, nxt in zip(path.segments, path.segments[1:]):
                assert nxt.t_start == pytest.approx(prev.t_end, abs=1e-6)

    def test_totals_attribute_every_second(self, sync_manifest):
        for path in critical_paths(sync_manifest):
            totals = path.totals()
            assert set(totals) == set(KINDS)
            assert sum(totals.values()) == pytest.approx(
                path.duration, abs=1e-3
            )
            # MD dominates a T-REMD cycle's critical path (Fig. 5's point)
            assert totals["md"] > 0.5 * path.duration
            assert totals["idle"] >= 0.0

    def test_md_segments_name_real_units(self, sync_manifest):
        unit_names = {name for _, name, _ in sync_manifest.timeline}
        for path in critical_paths(sync_manifest):
            for seg in path.segments:
                if seg.kind == "idle":
                    assert seg.state is None
                else:
                    assert seg.label in unit_names


class TestClassify:
    def test_buckets(self):
        assert classify("EXECUTING", "md") == "md"
        assert classify("EXECUTING", "exchange") == "exchange"
        assert classify("EXECUTING", "single_point") == "exchange"
        assert classify("EXECUTING", None) == "other"
        assert classify("STAGING_INPUT", "md") == "staging"
        assert classify("STAGING_OUTPUT", "md") == "staging"
        assert classify("SCHEDULING", "md") == "overhead"
        assert classify("AGENT_EXECUTING_PENDING", "md") == "overhead"


class TestRenderReport:
    def test_report_renders_tables(self, sync_manifest):
        text = render_report(sync_manifest)
        assert "Critical path per cycle" in text
        assert "Phase decomposition" in text
        assert "cycle 0" in text and "cycle 1" in text
        assert "md_r" in text  # longest segments name actual units

    def test_max_segments_caps_listing(self, sync_manifest):
        short = render_report(sync_manifest, max_segments=1)
        assert len(short.splitlines()) < len(
            render_report(sync_manifest, max_segments=10).splitlines()
        )

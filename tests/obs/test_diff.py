"""Tests for run-to-run manifest diffing."""

import pytest

from repro.core import RepEx
from repro.obs.diff import diff_manifests, render_diff
from tests.conftest import small_tremd_config


@pytest.fixture(scope="module")
def manifest():
    return RepEx(small_tremd_config()).run().manifest


class TestSelfDiff:
    def test_all_deltas_zero(self, manifest):
        """Acceptance criterion: a run diffed against itself is silent."""
        diff = diff_manifests(manifest, manifest)
        assert diff.identical
        assert diff.changed() == []
        for delta in diff.all_deltas():
            assert delta.delta == 0.0

    def test_reloaded_manifest_still_zero(self, manifest, tmp_path):
        """Serialization round-trips must not introduce phantom deltas."""
        from repro.obs.manifest import RunManifest

        loaded = RunManifest.load(manifest.dump(tmp_path / "run.jsonl"))
        assert diff_manifests(manifest, loaded).identical

    def test_render_reports_identical(self, manifest):
        text = render_diff(diff_manifests(manifest, manifest))
        assert "config: identical" in text
        assert "observationally identical" in text


class TestRealDiff:
    def test_longer_run_changes_quantities(self, manifest):
        other = RepEx(small_tremd_config(n_cycles=3)).run().manifest
        diff = diff_manifests(manifest, other)
        assert not diff.same_config
        assert not diff.identical
        names = {d.name for d in diff.changed()}
        assert "wallclock_s" in names
        assert "phase.md" in names
        assert "emm.cycles" in names
        assert "critical_path.md" in names

    def test_compares_all_dimensions_of_a_run(self, manifest):
        diff = diff_manifests(manifest, manifest)
        names = {d.name for d in diff.all_deltas()}
        assert "wallclock_s" in names
        assert "utilization" in names
        assert "fault_events" in names
        assert "phase.md" in names
        assert "acceptance.overall" in names
        assert "acceptance.temperature" in names  # per-dim labelled counters
        assert "critical_path.md" in names
        assert "emm.cycles" in names

    def test_only_changed_suppresses_zero_rows(self, manifest):
        other = RepEx(small_tremd_config(n_cycles=3)).run().manifest
        full = render_diff(diff_manifests(manifest, other))
        short = render_diff(
            diff_manifests(manifest, other), only_changed=True
        )
        assert len(short.splitlines()) < len(full.splitlines())
        assert "DIFFERENT" in short

"""Host-time profiler: self-time attribution, module probe API."""

import time

import pytest

from repro.core import RepEx
from repro.obs import hostprof
from repro.obs.hostprof import HostProfiler
from tests.conftest import small_tremd_config


@pytest.fixture(autouse=True)
def _profiling_off():
    """Every test starts and ends with the module probe disabled."""
    hostprof.disable()
    yield
    hostprof.disable()


class TestSelfTime:
    def test_single_section_accumulates(self):
        prof = HostProfiler()
        with prof.section("work"):
            time.sleep(0.01)
        assert prof.totals["work"] >= 0.01
        assert prof.counts["work"] == 1

    def test_nested_section_subtracts_from_parent(self):
        prof = HostProfiler()
        with prof.section("outer"):
            time.sleep(0.01)
            with prof.section("inner"):
                time.sleep(0.03)
            time.sleep(0.01)
        assert prof.totals["inner"] >= 0.03
        # outer's self-time excludes the 0.03 spent inside inner
        assert 0.02 <= prof.totals["outer"] < 0.03

    def test_reentrant_same_name_nests(self):
        prof = HostProfiler()
        with prof.section("s"):
            with prof.section("s"):
                pass
        assert prof.counts["s"] == 2

    def test_rows_sorted_with_unattributed_remainder(self):
        prof = HostProfiler()
        prof.totals.update({"small": 1.0, "big": 3.0})
        prof.counts.update({"small": 2, "big": 4})
        rows = prof.rows(total_s=10.0)
        assert [r[0] for r in rows] == ["big", "small", "unattributed"]
        assert rows[-1][1] == pytest.approx(6.0)

    def test_unattributed_never_negative(self):
        """Timer skew can make probes sum past the measured wall."""
        prof = HostProfiler()
        prof.totals["work"] = 2.0
        assert prof.rows(total_s=1.0)[-1][1] == 0.0

    def test_report_and_reset(self):
        prof = HostProfiler()
        with prof.section("emm"):
            pass
        text = prof.report(total_s=1.0)
        assert "host-time attribution" in text
        assert "emm" in text and "unattributed" in text
        prof.reset()
        assert prof.totals == {} and prof.counts == {}
        assert prof.report() == "(no host-time sections recorded)"


class TestModuleProbe:
    def test_disabled_probe_is_a_shared_noop(self):
        assert hostprof.active() is None
        cm1 = hostprof.section("anything")
        cm2 = hostprof.section("else")
        assert cm1 is cm2  # one shared object, no allocation per probe
        with cm1:
            pass
        assert hostprof.totals() == {}
        assert hostprof.report() == "(host profiling is off)"

    def test_enable_routes_probes_and_disable_retires(self):
        prof = hostprof.enable()
        assert hostprof.active() is prof
        with hostprof.section("scheduler"):
            pass
        assert "scheduler" in hostprof.totals()
        retired = hostprof.disable()
        assert retired is prof
        assert hostprof.active() is None


class TestProfiledRun:
    def test_run_attributes_subsystem_time_without_changing_results(self):
        baseline = RepEx(small_tremd_config()).run()
        prof = hostprof.enable()
        profiled = RepEx(small_tremd_config()).run()
        hostprof.disable()
        # the probes saw the run's subsystems...
        assert {"scheduler", "emm"} <= set(prof.totals)
        assert any(name.startswith("work.") for name in prof.totals)
        # ...and perturbed nothing on the virtual clock
        assert profiled.manifest.timeline == baseline.manifest.timeline
        assert profiled.manifest.metrics == baseline.manifest.metrics

"""Incremental manifest streaming and fault events in manifests."""

import json

from repro.core import RepEx
from repro.core.config import FailureSpec, ResourceSpec
from repro.obs.manifest import ManifestStream, RunManifest
from repro.obs.metrics import MetricsRegistry, using_registry
from repro.pilot.faultdomain import FaultEvent
from tests.conftest import small_tremd_config


def run_streamed(path, config):
    with using_registry(MetricsRegistry()):
        result = RepEx(config, manifest_path=path).run()
    return result


class TestStreamedRun:
    def test_finalized_stream_loads_like_a_manifest(self, tmp_path):
        path = tmp_path / "run.jsonl"
        config = small_tremd_config()
        result = run_streamed(path, config)
        loaded = RunManifest.load(path)
        assert not loaded.partial
        assert loaded.title == "test-tremd"
        assert loaded.t_end == result.t_end
        # streamed lines are in causal firing order; the in-memory manifest
        # groups per unit — same events either way
        assert sorted(map(tuple, loaded.timeline)) == sorted(
            map(tuple, result.manifest.timeline)
        )
        assert loaded.metrics == result.manifest.metrics

    def test_fault_events_streamed_and_kept(self, tmp_path):
        path = tmp_path / "run.jsonl"
        config = small_tremd_config(
            failure=FailureSpec(
                policy="continue",
                staging_fault_probability=0.3,
                staging_max_retries=6,
            )
        )
        result = run_streamed(path, config)
        loaded = RunManifest.load(path)
        assert loaded.fault_events  # transients occurred and were recorded
        assert loaded.fault_events == result.manifest.fault_events
        assert all(e["fault"] == "staging_fault" for e in loaded.fault_events)

    def test_unfinalized_stream_is_a_partial_manifest(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        config = small_tremd_config()
        stream = ManifestStream(path, config)
        stream.on_transition("md_r0_c0", "EXECUTING", 1.25)
        stream.on_fault(
            FaultEvent(t=2.0, kind="node_crash", detail={"node": 1})
        )
        stream.close()  # crash: no finalize
        loaded = RunManifest.load(path)
        assert loaded.partial
        assert [tuple(e) for e in loaded.timeline] == [
            (1.25, "md_r0_c0", "EXECUTING")
        ]
        assert loaded.fault_events == [
            {"t": 2.0, "fault": "node_crash", "node": 1}
        ]
        assert any("PARTIAL" in line for line in loaded.summary_lines())

    def test_stream_is_flushed_while_in_flight(self, tmp_path):
        # the provisional header alone must be on disk immediately
        path = tmp_path / "header.jsonl"
        stream = ManifestStream(path, small_tremd_config())
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "run"
        assert header["partial"] is True
        assert header["title"] == "test-tremd"
        stream.close()

    def test_write_after_close_is_noop(self, tmp_path):
        path = tmp_path / "closed.jsonl"
        stream = ManifestStream(path, small_tremd_config())
        stream.close()
        stream.on_transition("u", "DONE", 1.0)  # must not raise
        stream.close()  # idempotent
        assert len(path.read_text().splitlines()) == 1


class TestFaultEventsRoundTrip:
    def test_to_jsonl_from_jsonl_keeps_fault_events(self, tmp_path):
        config = small_tremd_config(
            failure=FailureSpec(policy="continue", node_crashes=[[40.0, 0]]),
            resource=ResourceSpec("supermic", cores=40),
            cores_per_replica=5,
        )
        with using_registry(MetricsRegistry()):
            result = RepEx(config).run()
        manifest = result.manifest
        assert [e["fault"] for e in manifest.fault_events] == ["node_crash"]
        path = tmp_path / "m.jsonl"
        manifest.dump(path)
        loaded = RunManifest.load(path)
        assert loaded.fault_events == manifest.fault_events
        assert any(
            "fault events: 1" in line for line in loaded.summary_lines()
        )


class TestPerDimensionCounters:
    def test_labelled_exchange_counters_match_global(self):
        with using_registry(MetricsRegistry()) as registry:
            RepEx(small_tremd_config()).run()
            counters = registry.snapshot()["counters"]
        assert counters["exchange.attempted"] > 0
        assert (
            counters["exchange.attempted{dim=temperature}"]
            == counters["exchange.attempted"]
        )
        assert (
            counters.get("exchange.accepted{dim=temperature}", 0)
            == counters.get("exchange.accepted", 0)
        )

    def test_multidim_counters_split_by_dimension(self):
        from repro.core.config import DimensionSpec

        config = small_tremd_config(
            dimensions=[
                DimensionSpec("temperature", 2, 273.0, 373.0),
                DimensionSpec("umbrella", 2, 0.0, 360.0),
            ],
            n_cycles=4,
        )
        with using_registry(MetricsRegistry()) as registry:
            result = RepEx(config).run()
            counters = registry.snapshot()["counters"]
        per_dim = {
            name: counters.get(f"exchange.attempted{{dim={name}}}", 0)
            for name in result.exchange_stats
        }
        assert len(per_dim) == 2
        assert all(v > 0 for v in per_dim.values())
        assert sum(per_dim.values()) == counters["exchange.attempted"]

"""Declarative alert rules evaluated on the virtual clock."""

import pytest

from repro.core import RepEx
from repro.obs.alerts import (
    AlertError,
    AlertManager,
    AlertRule,
    default_rules,
    load_rules,
)
from repro.obs.metrics import MetricsRegistry
from tests.conftest import small_tremd_config


class TestRuleLoading:
    def test_bare_list_and_rules_object_both_load(self):
        entry = (
            '{"name": "q", "kind": "above", '
            '"metric": "scheduler.queue_depth", "threshold": 5}'
        )
        for text in (f"[{entry}]", f'{{"rules": [{entry}]}}'):
            (rule,) = load_rules(text)
            assert rule.name == "q" and rule.threshold == 5

    def test_unknown_key_is_rejected(self):
        with pytest.raises(AlertError, match="unknown keys"):
            load_rules(
                '[{"name": "q", "kind": "above", "metric": "m", '
                '"threshold": 1, "treshold": 2}]'
            )

    def test_missing_required_key_is_rejected(self):
        with pytest.raises(AlertError, match="missing keys"):
            load_rules('[{"name": "q", "kind": "above", "metric": "m"}]')

    def test_duplicate_names_rejected(self):
        entry = (
            '{"name": "q", "kind": "above", "metric": "m", "threshold": 1}'
        )
        with pytest.raises(AlertError, match="duplicate"):
            load_rules(f"[{entry}, {entry}]")

    def test_ratio_kind_requires_divisor(self):
        with pytest.raises(AlertError, match="divisor"):
            AlertRule(name="r", kind="ratio_below", metric="m", threshold=0.1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(AlertError, match="kind"):
            AlertRule(name="r", kind="sideways", metric="m", threshold=0.1)

    def test_default_rules_round_trip_through_their_dict_form(self):
        import json

        rules = default_rules()
        reloaded = load_rules(json.dumps([r.to_dict() for r in rules]))
        assert reloaded == rules


class TestEvaluation:
    def test_above_fires_and_resolves(self):
        registry = MetricsRegistry()
        depth = registry.gauge("scheduler.queue_depth")
        mgr = AlertManager(
            [AlertRule(name="deep", kind="above",
                       metric="scheduler.queue_depth", threshold=10)],
            registry,
        )
        assert mgr.evaluate(0.0) == []
        depth.set(50)
        (fired,) = mgr.evaluate(5.0)
        assert fired["state"] == "firing" and fired["value"] == 50.0
        assert mgr.firing() == ["deep"]
        snap = registry.snapshot()
        assert snap["gauges"]["alerts.firing{rule=deep}"] == 1.0
        depth.set(0)
        (resolved,) = mgr.evaluate(9.0)
        assert resolved["state"] == "resolved"
        assert mgr.firing() == []
        assert registry.snapshot()["gauges"]["alerts.firing{rule=deep}"] == 0.0

    def test_for_s_hysteresis_delays_firing(self):
        registry = MetricsRegistry()
        depth = registry.gauge("scheduler.queue_depth")
        mgr = AlertManager(
            [AlertRule(name="deep", kind="above",
                       metric="scheduler.queue_depth", threshold=10,
                       for_s=100.0)],
            registry,
        )
        depth.set(50)
        assert mgr.evaluate(0.0) == []     # pending, not firing
        assert mgr.evaluate(50.0) == []    # still inside for_s
        (fired,) = mgr.evaluate(100.0)     # held long enough
        assert fired["state"] == "firing"
        # a dip resets the pending window
        depth.set(0)
        mgr.evaluate(110.0)
        depth.set(50)
        assert mgr.evaluate(120.0) == []

    def test_ratio_below_respects_min_samples(self):
        registry = MetricsRegistry()
        acc = registry.counter("exchange.accepted")
        att = registry.counter("exchange.attempted")
        mgr = AlertManager(
            [AlertRule(name="acceptance_low", kind="ratio_below",
                       metric="exchange.accepted",
                       divisor="exchange.attempted",
                       threshold=0.5, min_samples=20)],
            registry,
        )
        att.inc(10)  # ratio 0.0 but below min_samples
        assert mgr.evaluate(1.0) == []
        att.inc(10)
        acc.inc(1)   # 1/20 = 0.05 < 0.5, enough samples
        (fired,) = mgr.evaluate(2.0)
        assert fired["state"] == "firing"
        assert fired["value"] == pytest.approx(0.05)

    def test_rate_above_uses_deltas_between_evaluations(self):
        registry = MetricsRegistry()
        failures = registry.counter("emm.failures")
        mgr = AlertManager(
            [AlertRule(name="failure_storm", kind="rate_above",
                       metric="emm.failures", threshold=1.0)],
            registry,
        )
        assert mgr.evaluate(0.0) == []  # first sample: no rate yet
        failures.inc(50)
        (fired,) = mgr.evaluate(10.0)   # 5 failures/s
        assert fired["state"] == "firing"
        assert fired["value"] == pytest.approx(5.0)

    def test_stale_for_fires_when_value_stops_moving(self):
        registry = MetricsRegistry()
        saved = registry.counter("checkpoint.saved")
        mgr = AlertManager(
            [AlertRule(name="stale", kind="stale_for",
                       metric="checkpoint.saved", threshold=100.0)],
            registry,
        )
        saved.inc()
        mgr.evaluate(0.0)
        assert mgr.evaluate(50.0) == []        # age 50 <= 100
        (fired,) = mgr.evaluate(200.0)         # age 200 > 100
        assert fired["state"] == "firing"
        saved.inc()                            # progress resolves it
        (resolved,) = mgr.evaluate(210.0)
        assert resolved["state"] == "resolved"

    def test_sinks_see_every_transition(self):
        registry = MetricsRegistry()
        depth = registry.gauge("scheduler.queue_depth")
        mgr = AlertManager(
            [AlertRule(name="deep", kind="above",
                       metric="scheduler.queue_depth", threshold=10)],
            registry,
        )
        seen = []
        mgr.add_sink(seen.append)
        depth.set(50)
        mgr.evaluate(1.0)
        depth.set(0)
        mgr.evaluate(2.0)
        assert [r["state"] for r in seen] == ["firing", "resolved"]
        assert seen == mgr.transitions


class TestAlertsInRun:
    def test_transitions_land_in_the_manifest(self, tmp_path):
        # emm.cycles exceeds 0 after the first cycle, so this rule
        # deterministically fires mid-run
        rule = AlertRule(
            name="any_cycle", kind="above", metric="emm.cycles", threshold=0,
        )
        path = tmp_path / "run.jsonl"
        result = RepEx(
            small_tremd_config(n_cycles=3), alert_rules=[rule],
            manifest_path=path,
        ).run()
        manifest = result.manifest
        assert manifest.alerts, "expected at least one alert transition"
        assert manifest.alerts[0]["rule"] == "any_cycle"
        assert manifest.alerts[0]["state"] == "firing"
        # streamed and loaded manifests agree (no duplicated records)
        from repro.obs.manifest import RunManifest

        loaded = RunManifest.load(path)
        assert loaded.alerts == manifest.alerts
        text = "\n".join(manifest.summary_lines())
        assert "alerts:" in text

    def test_alert_rules_do_not_change_the_timeline(self):
        baseline = RepEx(small_tremd_config()).run()
        with_alerts = RepEx(
            small_tremd_config(), alert_rules=default_rules()
        ).run()
        assert with_alerts.manifest.timeline == baseline.manifest.timeline
